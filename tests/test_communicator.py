"""Unit tests for the simulated SPMD runtime (communicator + launcher)."""

import numpy as np
import pytest

from repro.mpisim.collectives import bucket_by_destination, concatenate_received, payload_nbytes
from repro.mpisim.errors import CollectiveMismatchError, RankFailedError
from repro.mpisim.runtime import spmd_run
from repro.mpisim.topology import Topology
from repro.mpisim.tracing import CommTrace


class TestPayloadSizing:
    def test_numpy(self):
        assert payload_nbytes(np.zeros(10, dtype=np.int64)) == 80

    def test_strings_and_bytes(self):
        assert payload_nbytes("hello") == 5
        assert payload_nbytes(b"abc") == 3

    def test_none_is_free(self):
        assert payload_nbytes(None) == 0

    def test_scalars(self):
        assert payload_nbytes(7) == 8
        assert payload_nbytes(3.5) == 8

    def test_containers_are_monotone(self):
        small = payload_nbytes([1, 2])
        big = payload_nbytes([1, 2, 3, 4, 5])
        assert big > small

    def test_dict(self):
        assert payload_nbytes({"a": 1}) > 0


class TestBucketing:
    def test_bucket_1d(self):
        values = np.array([10, 20, 30, 40])
        dests = np.array([1, 0, 1, 0])
        buckets = bucket_by_destination(values, dests, 2)
        np.testing.assert_array_equal(buckets[0], [20, 40])
        np.testing.assert_array_equal(buckets[1], [10, 30])

    def test_bucket_2d_preserves_rows(self):
        values = np.arange(12).reshape(4, 3)
        dests = np.array([2, 0, 2, 1])
        buckets = bucket_by_destination(values, dests, 3)
        np.testing.assert_array_equal(buckets[2], values[[0, 2]])

    def test_bucket_all_rows_covered(self):
        rng = np.random.default_rng(0)
        values = rng.integers(0, 100, size=50)
        dests = rng.integers(0, 4, size=50)
        buckets = bucket_by_destination(values, dests, 4)
        assert sum(b.size for b in buckets) == 50

    def test_bucket_invalid(self):
        with pytest.raises(ValueError):
            bucket_by_destination(np.arange(3), np.array([0, 5, 1]), 2)
        with pytest.raises(ValueError):
            bucket_by_destination(np.arange(3), np.array([0, 1]), 2)

    def test_concatenate_received(self):
        chunks = [np.array([1, 2]), np.array([], dtype=np.int64), np.array([3])]
        data, offsets = concatenate_received(chunks)
        np.testing.assert_array_equal(data, [1, 2, 3])
        np.testing.assert_array_equal(offsets, [0, 2, 2, 3])


class TestCollectives:
    def test_allreduce_sum_and_max(self):
        def program(comm):
            return comm.allreduce(comm.rank + 1, op="sum"), comm.allreduce(comm.rank, op="max")

        results = spmd_run(4, program)
        assert all(r == (10, 3) for r in results)

    def test_bcast(self):
        def program(comm):
            value = "hello" if comm.rank == 2 else None
            return comm.bcast(value, root=2)

        assert spmd_run(3, program) == ["hello"] * 3

    def test_gather(self):
        def program(comm):
            return comm.gather(comm.rank * 2, root=0)

        results = spmd_run(3, program)
        assert results[0] == [0, 2, 4]
        assert results[1] is None and results[2] is None

    def test_allgather(self):
        def program(comm):
            return comm.allgather(comm.rank)

        assert spmd_run(3, program) == [[0, 1, 2]] * 3

    def test_reduce(self):
        def program(comm):
            return comm.reduce(comm.rank, op="sum", root=1)

        results = spmd_run(3, program)
        assert results[1] == 3
        assert results[0] is None

    def test_barrier_and_repr(self):
        def program(comm):
            comm.barrier()
            return comm.rank

        assert spmd_run(2, program) == [0, 1]

    def test_alltoall(self):
        def program(comm):
            send = [f"{comm.rank}->{d}" for d in range(comm.size)]
            return comm.alltoall(send)

        results = spmd_run(3, program)
        assert results[1] == ["0->1", "1->1", "2->1"]

    def test_alltoallv_transposes_payloads(self):
        def program(comm):
            send = [np.full(comm.rank + 1, d, dtype=np.int64) for d in range(comm.size)]
            received = comm.alltoallv(send)
            # Received chunk from source s has length s+1 and is filled with my rank.
            assert all(received[s].size == s + 1 for s in range(comm.size))
            assert all((received[s] == comm.rank).all() for s in range(comm.size))
            return sum(r.size for r in received)

        results = spmd_run(4, program)
        assert results == [10, 10, 10, 10]

    def test_alltoallv_wrong_length(self):
        def program(comm):
            return comm.alltoallv([None])  # wrong number of payloads

        with pytest.raises(RankFailedError):
            spmd_run(2, program)

    def test_single_rank_fast_path(self):
        def program(comm):
            return comm.allreduce(41) + 1

        assert spmd_run(1, program) == [42]


class TestErrorHandling:
    def test_rank_exception_propagates(self):
        def program(comm):
            if comm.rank == 1:
                raise RuntimeError("boom")
            comm.barrier()  # would deadlock without abort handling
            return comm.rank

        with pytest.raises(RankFailedError, match="rank 1"):
            spmd_run(3, program)

    def test_collective_mismatch_detected(self):
        def program(comm):
            if comm.rank == 0:
                comm.barrier()
            else:
                comm.allreduce(1)
            return None

        with pytest.raises(RankFailedError) as err:
            spmd_run(2, program)
        assert isinstance(err.value.__cause__, CollectiveMismatchError)

    def test_invalid_root(self):
        def program(comm):
            return comm.bcast(1, root=5)

        with pytest.raises(RankFailedError):
            spmd_run(2, program)

    def test_unknown_reduction(self):
        def program(comm):
            return comm.allreduce(1, op="median")

        with pytest.raises(RankFailedError):
            spmd_run(2, program)

    def test_n_ranks_validation(self):
        with pytest.raises(ValueError):
            spmd_run(0, lambda comm: None)
        with pytest.raises(ValueError):
            spmd_run(2, lambda comm: None, topology=Topology.single_node(3))


class TestTracingIntegration:
    def test_alltoallv_bytes_recorded(self):
        trace = CommTrace(2)

        def program(comm):
            comm.set_phase("test_phase")
            send = [np.zeros(10, dtype=np.int64), np.zeros(5, dtype=np.int64)]
            comm.alltoallv(send)
            return None

        spmd_run(2, program, trace=trace)
        traffic = trace.phase_traffic("test_phase")
        # Each rank sends 80 bytes to rank 0 and 40 bytes to rank 1.
        assert traffic.volume[0, 0] == 80
        assert traffic.volume[0, 1] == 40
        assert traffic.volume[1, 1] == 40
        assert traffic.collective_calls == 1

    def test_results_in_rank_order(self):
        results = spmd_run(6, lambda comm: comm.rank ** 2)
        assert results == [0, 1, 4, 9, 16, 25]
