"""Shared fixtures: small synthetic data sets and pipeline configurations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import PipelineConfig
from repro.data.datasets import DatasetSpec, generate_dataset
from repro.data.genome import GenomeSpec
from repro.data.reads import ReadSimSpec
from repro.seq.kmer import KmerSpec
from repro.seq.records import Read, ReadSet


def pytest_configure(config: pytest.Config) -> None:
    """Register the tier markers (no pytest.ini — the repo runs bare pytest).

    ``slow`` marks the end-to-end pipeline tests; ``-m "not slow"`` is the
    fast tier the CI script runs on every change, the full (unfiltered) run
    is the tier-1 gate.
    """
    config.addinivalue_line(
        "markers", "slow: end-to-end pipeline tests (excluded from the fast CI tier)"
    )


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    """A deterministic RNG for ad-hoc test data."""
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def micro_dataset():
    """A very small workload (3 kbp genome, ~40 reads) for fast integration tests."""
    spec = DatasetSpec(
        name="micro",
        genome=GenomeSpec(length=3000, repeat_fraction=0.0, seed=5),
        reads=ReadSimSpec(coverage=12.0, mean_read_length=900, min_read_length=400,
                          error_rate=0.08, seed=6),
    )
    return generate_dataset(spec)


@pytest.fixture(scope="session")
def small_dataset():
    """A small-but-realistic workload (6 kbp genome, ~80 reads) with repeats."""
    spec = DatasetSpec(
        name="small",
        genome=GenomeSpec(length=6000, repeat_fraction=0.05, repeat_length=200, seed=15),
        reads=ReadSimSpec(coverage=15.0, mean_read_length=1000, min_read_length=400,
                          error_rate=0.10, seed=16),
    )
    return generate_dataset(spec)


@pytest.fixture(scope="session")
def micro_config() -> PipelineConfig:
    """Pipeline configuration tuned for the micro data set (smaller k)."""
    return PipelineConfig(kmer=KmerSpec(k=15), coverage_hint=12.0, error_rate_hint=0.08)


@pytest.fixture
def toy_reads() -> ReadSet:
    """A handful of hand-written reads with known exact overlaps."""
    genome = (
        "ACGTTGCAAGCTAGCTTACGGATCCGATTACAGGCTTAACGGTTACCGGATCGATCCGGTTAAC"
        "CGGATTACCAGGTTAACCGGTTACAGGATCCGGATTAACCGGTTAACCGGATTACCGGTTAACC"
    )
    return ReadSet(
        [
            Read(name="r0", sequence=genome[0:80], true_start=0, true_end=80),
            Read(name="r1", sequence=genome[40:120], true_start=40, true_end=120),
            Read(name="r2", sequence=genome[60:128], true_start=60, true_end=128),
            Read(name="r3", sequence=genome[0:48], true_start=0, true_end=48),
        ]
    )
