"""Property tests for the typed collectives wire protocol.

The multiprocess backend moves every collective payload through
:mod:`repro.mpisim.serialization`; these tests pin the round-trip invariant
``decode(encode(x)) == x`` (types, dtypes, shapes and values preserved) over
the full supported type lattice, plus the strictness guarantees (unsupported
types and corrupt frames raise instead of guessing).
"""

import numpy as np
import pytest

from repro.mpisim.serialization import (
    UnsupportedPayloadError,
    decode_payload,
    encode_payload,
)


def roundtrip(value):
    return decode_payload(encode_payload(value))


def assert_equal_typed(original, decoded):
    """Deep equality that also checks types, dtypes and shapes."""
    assert type(decoded) is type(original), (type(original), type(decoded))
    if isinstance(original, np.ndarray):
        assert decoded.dtype == original.dtype
        assert decoded.shape == original.shape
        np.testing.assert_array_equal(decoded, original)
    elif isinstance(original, (list, tuple)):
        assert len(decoded) == len(original)
        for a, b in zip(original, decoded):
            assert_equal_typed(a, b)
    elif isinstance(original, dict):
        assert list(decoded.keys()) == list(original.keys())
        for key in original:
            assert_equal_typed(original[key], decoded[key])
    elif isinstance(original, float) and original != original:  # NaN
        assert decoded != decoded
    else:
        assert decoded == original


class TestScalars:
    @pytest.mark.parametrize("value", [
        None, True, False, 0, 7, -12345, 2**62, -(2**62), 0.0, 3.5, -1e300,
        float("inf"), float("nan"), "", "hello", "ünïcødé ☂", b"", b"abc",
        bytes(range(256)),
    ])
    def test_roundtrip(self, value):
        assert_equal_typed(value, roundtrip(value))

    def test_big_ints_beyond_64_bits(self):
        for value in (2**63, -(2**63) - 1, 10**30, -(10**30)):
            assert roundtrip(value) == value

    def test_numpy_scalars_decode_as_python(self):
        assert roundtrip(np.int64(42)) == 42
        assert isinstance(roundtrip(np.int64(42)), int)
        assert roundtrip(np.float64(2.5)) == 2.5
        assert roundtrip(np.bool_(True)) is True

    def test_bytearray_and_memoryview_decode_as_bytes(self):
        assert roundtrip(bytearray(b"xy")) == b"xy"
        assert roundtrip(memoryview(b"xy")) == b"xy"


class TestArrays:
    @pytest.mark.parametrize("dtype", [
        np.int8, np.int16, np.int32, np.int64, np.uint8, np.uint16,
        np.uint32, np.uint64, np.float32, np.float64, np.bool_,
    ])
    def test_dtypes(self, dtype, rng):
        array = rng.integers(0, 100, size=17).astype(dtype)
        assert_equal_typed(array, roundtrip(array))

    @pytest.mark.parametrize("shape", [(0,), (1,), (5,), (3, 4), (2, 3, 4), (0, 5), ()])
    def test_shapes(self, shape, rng):
        array = rng.standard_normal(size=shape)
        assert_equal_typed(array, roundtrip(array))

    def test_non_contiguous_input(self):
        base = np.arange(24, dtype=np.int64).reshape(4, 6)
        view = base[::2, ::3]  # non C-contiguous
        decoded = roundtrip(view)
        np.testing.assert_array_equal(decoded, view)

    def test_decoded_array_owns_writable_data(self):
        decoded = roundtrip(np.arange(5, dtype=np.int64))
        decoded[0] = 99  # must not be a read-only frombuffer view
        assert decoded[0] == 99

    def test_random_roundtrips(self, rng):
        for _ in range(50):
            dtype = rng.choice([np.int64, np.uint64, np.float64, np.uint8])
            ndim = int(rng.integers(1, 3))
            shape = tuple(int(rng.integers(0, 6)) for _ in range(ndim))
            array = (rng.integers(0, 2**31, size=shape)).astype(dtype)
            assert_equal_typed(array, roundtrip(array))


class TestContainers:
    def test_pipeline_shaped_payloads(self, rng):
        """The shapes the pipeline actually sends through collectives."""
        payloads = [
            # k-mer codes (bloom stage)
            rng.integers(0, 2**62, size=100).astype(np.uint64),
            # (code, packed meta) matrix (hash-table stage)
            rng.integers(0, 2**62, size=(40, 2)).astype(np.uint64),
            # (n, 5) pair matrix (overlap stage)
            rng.integers(0, 1000, size=(25, 5)).astype(np.int64),
            # packed read block (alignment stage)
            (np.array([3, 7], dtype=np.int64),
             np.array([0, 4, 9], dtype=np.int64), b"ACGTACGTA"),
            # HLL registers + scalar counters
            rng.integers(0, 32, size=2**8).astype(np.uint8),
            7,
        ]
        for payload in payloads:
            assert_equal_typed(payload, roundtrip(payload))

    def test_nested(self):
        value = {
            "a": [1, 2.5, None, "x"],
            "b": (np.arange(3), [b"raw", {"k": np.float32(1.5).item()}]),
            3: [[], (), {}],
        }
        assert_equal_typed(value, roundtrip(value))

    def test_list_vs_tuple_preserved(self):
        assert type(roundtrip([1, 2])) is list
        assert type(roundtrip((1, 2))) is tuple

    def test_dict_insertion_order_preserved(self):
        value = {"z": 1, "a": 2, "m": 3}
        assert list(roundtrip(value).keys()) == ["z", "a", "m"]


class TestStrictness:
    def test_unsupported_types_raise(self):
        class Custom:
            pass

        for bad in (Custom(), {1, 2}, frozenset((3,)), object(), lambda: None):
            with pytest.raises(UnsupportedPayloadError):
                encode_payload(bad)

    def test_unsupported_nested_raises(self):
        with pytest.raises(UnsupportedPayloadError):
            encode_payload([1, {"bad": {1, 2}}])

    def test_object_dtype_array_raises(self):
        with pytest.raises(UnsupportedPayloadError):
            encode_payload(np.array([object()], dtype=object))

    def test_trailing_bytes_rejected(self):
        with pytest.raises(ValueError):
            decode_payload(encode_payload(7) + b"extra")

    def test_unknown_tag_rejected(self):
        with pytest.raises(ValueError):
            decode_payload(b"Z")

    def test_sizes_are_exact_for_arrays(self):
        array = np.zeros(100, dtype=np.int64)
        encoded = encode_payload(array)
        # tag + dtype header + ndim + shape + raw buffer, no pickle bloat
        assert len(encoded) < array.nbytes + 32
