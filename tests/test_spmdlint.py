"""spmdlint unit tests: each rule against bad-fixture snippets, suppression
syntax, the SL005 project rule against the real tree, and the requirement
that the shipped source lints clean (the zero-findings gate CI enforces).
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.analysis.lint import RULES, lint_paths, lint_source
from repro.core.counters import (
    PIPELINE_COUNTERS,
    REGISTERED_COUNTERS,
    SCHEDULE_FLAG_COUNTERS,
)
from repro.core.driver import run_dibella

REPO_ROOT = Path(__file__).resolve().parent.parent


def _rules(findings):
    return [finding.rule for finding in findings]


def _lint(snippet: str, path: str = "module.py"):
    return lint_source(textwrap.dedent(snippet), path)


class TestSL001RankDependentCollectives:
    def test_collective_under_rank_if(self):
        findings = _lint("""
            def stage(comm):
                if comm.rank == 0:
                    comm.barrier()
        """)
        assert _rules(findings) == ["SL001"]
        assert "rank-dependent" in findings[0].message

    def test_collective_in_else_branch(self):
        findings = _lint("""
            def stage(comm):
                if comm.rank == 0:
                    x = 1
                else:
                    comm.allreduce(1)
        """)
        assert _rules(findings) == ["SL001"]

    def test_collective_under_rank_while(self):
        findings = _lint("""
            def stage(comm):
                while comm.rank < limit:
                    comm.bcast(None)
        """)
        assert _rules(findings) == ["SL001"]

    def test_rank_free_branch_is_clean(self):
        findings = _lint("""
            def stage(comm, flag):
                if flag:
                    comm.barrier()
        """)
        assert findings == []

    def test_rank_read_without_collective_is_clean(self):
        findings = _lint("""
            def stage(comm, state):
                if comm.rank == 0:
                    state.counters["x"] = 1
        """)
        assert findings == []

    def test_collective_after_rank_branch_is_clean(self):
        findings = _lint("""
            def stage(comm):
                if comm.rank == 0:
                    x = 1
                comm.barrier()
        """)
        assert findings == []


class TestSL002PhaseLabels:
    def test_unlabelled_alltoallv(self):
        findings = _lint("""
            def stage(comm, send):
                return comm.alltoallv(send)
        """)
        assert _rules(findings) == ["SL002"]

    def test_explicit_none_label(self):
        findings = _lint("""
            def stage(comm, send):
                return comm.alltoallv_start(send, label=None)
        """)
        assert _rules(findings) == ["SL002"]

    def test_unlabelled_schedule(self):
        findings = _lint("""
            def stage(comm, timer):
                return SuperstepSchedule(comm, timer, 3, double_buffer=True)
        """)
        assert _rules(findings) == ["SL002"]

    def test_labelled_calls_are_clean(self):
        findings = _lint("""
            def stage(comm, timer, send):
                comm.alltoallv(send, label="bloom")
                handle = comm.alltoallv_start(send, label="bloom")
                return SuperstepSchedule(comm, timer, 3, label="bloom")
        """)
        assert findings == []


class TestSL003Nondeterminism:
    def test_iteration_over_set(self):
        findings = _lint("""
            def f(items):
                for item in set(items):
                    consume(item)
        """)
        assert _rules(findings) == ["SL003"]

    def test_comprehension_over_set_literal(self):
        findings = _lint("""
            def f(a, b):
                return [g(x) for x in {a, b}]
        """)
        assert _rules(findings) == ["SL003"]

    def test_set_algebra_iteration(self):
        findings = _lint("""
            def f(a, b):
                for key in set(a) - set(b):
                    consume(key)
        """)
        assert _rules(findings) == ["SL003"]

    def test_sorted_set_is_clean(self):
        findings = _lint("""
            def f(items):
                for item in sorted(set(items)):
                    consume(item)
        """)
        assert findings == []

    def test_global_numpy_rng(self):
        findings = _lint("""
            import numpy as np
            def f():
                return np.random.rand(3)
        """)
        assert _rules(findings) == ["SL003"]

    def test_seeded_generator_is_clean(self):
        findings = _lint("""
            import numpy as np
            def f(seed):
                return np.random.default_rng(seed).random(3)
        """)
        assert findings == []

    def test_stdlib_global_rng(self):
        findings = _lint("""
            import random
            def f(xs):
                random.shuffle(xs)
        """)
        assert _rules(findings) == ["SL003"]

    def test_wall_clock(self):
        findings = _lint("""
            import time
            def f():
                return time.time()
        """)
        assert _rules(findings) == ["SL003"]

    def test_perf_counter_is_clean(self):
        findings = _lint("""
            import time
            def f():
                return time.perf_counter()
        """)
        assert findings == []


class TestSL004CounterRegistry:
    def test_unregistered_counter_write(self):
        findings = _lint("""
            def stage(state):
                state.counters["not_a_real_counter"] = 1
        """, path="src/repro/core/stages.py")
        assert _rules(findings) == ["SL004"]
        assert "not_a_real_counter" in findings[0].message

    def test_registered_counter_write_is_clean(self):
        findings = _lint("""
            def stage(state):
                state.counters["overlap_pairs"] = 1
                state.counters["dp_cells"] += 10
        """, path="src/repro/core/stages.py")
        assert findings == []

    def test_non_literal_key(self):
        findings = _lint("""
            def stage(state, name):
                state.counters[name] = 1
        """, path="src/repro/core/pipeline.py")
        assert _rules(findings) == ["SL004"]

    def test_dynamic_update(self):
        findings = _lint("""
            def stage(state, extra):
                state.counters.update(extra)
        """, path="src/repro/core/supersteps.py")
        assert _rules(findings) == ["SL004"]

    def test_literal_update_checked_per_key(self):
        findings = _lint("""
            def stage(state):
                state.counters.update({"overlap_pairs": 1, "bogus_key": 2})
        """, path="src/repro/core/stages.py")
        assert _rules(findings) == ["SL004"]
        assert "bogus_key" in findings[0].message

    def test_counter_writes_outside_audited_files_ignored(self):
        findings = _lint("""
            def helper(state):
                state.counters["anything_goes"] = 1
        """, path="src/repro/bench/report.py")
        assert findings == []


class TestSuppressions:
    def test_same_line_suppression(self):
        findings = _lint("""
            def stage(comm):
                if comm.rank == 0:
                    comm.barrier()  # spmdlint: disable=SL001 fixture: safe here
        """)
        assert findings == []

    def test_comment_block_above_suppresses_next_line(self):
        findings = _lint("""
            def stage(comm, send):
                # spmdlint: disable=SL002 fixture: label applied by the
                # caller via functools.partial
                return comm.alltoallv(send)
        """)
        assert findings == []

    def test_suppression_without_reason_is_reported(self):
        findings = _lint("""
            def stage(comm):
                if comm.rank == 0:
                    comm.barrier()  # spmdlint: disable=SL001
        """)
        assert _rules(findings) == ["SL000"]
        assert "reason" in findings[0].message

    def test_unknown_rule_id_is_reported(self):
        findings = _lint("""
            x = 1  # spmdlint: disable=SL999 not a rule
        """)
        assert _rules(findings) == ["SL000"]

    def test_suppression_only_covers_named_rule(self):
        findings = _lint("""
            def stage(comm, send):
                if comm.rank == 0:
                    comm.alltoallv(send)  # spmdlint: disable=SL002 fixture
        """)
        assert _rules(findings) == ["SL001"]

    def test_example_inside_string_is_not_a_suppression(self):
        findings = _lint('''
            DOC = """use # spmdlint: disable=SL001 <reason> to suppress"""
        ''')
        assert findings == []


class TestProjectLint:
    def test_rule_catalogue_covers_all_emitted_rules(self):
        assert set(RULES) == {"SL000", "SL001", "SL002", "SL003", "SL004",
                              "SL005"}

    def test_shipped_tree_is_clean(self):
        findings, n_files = lint_paths([REPO_ROOT / "src"])
        assert findings == []
        assert n_files > 50

    def test_sl005_catches_unplumbed_knob(self, tmp_path):
        # A synthetic repo: one knob has a CLI flag but no env/README row.
        (tmp_path / "README.md").write_text(
            "| Knob | Config field | CLI | Env |\n"
            "|---|---|---|---|\n"
            "| Window | `window` | `--window` | `DIBELLA_WINDOW` |\n")
        pkg = tmp_path / "repro" / "core"
        pkg.mkdir(parents=True)
        (tmp_path / "repro" / "cli.py").write_text(textwrap.dedent("""
            def build(parser):
                parser.add_argument("--window", type=int)
                parser.add_argument("--depth", type=int)
        """))
        (pkg / "config.py").write_text(textwrap.dedent("""
            import os
            from dataclasses import dataclass, field

            @dataclass
            class PipelineConfig:
                window: int = field(
                    default_factory=lambda: int(os.environ.get("DIBELLA_WINDOW", "4")))
                depth: int = 2
                internal_hint: float = 0.5
        """))
        findings, _ = lint_paths([tmp_path])
        sl005 = [finding for finding in findings if finding.rule == "SL005"]
        assert len(sl005) == 1
        assert "'depth'" in sl005[0].message
        assert "env" in sl005[0].message and "README" in sl005[0].message


class TestCounterRegistry:
    def test_schedule_flags_are_registered(self):
        assert SCHEDULE_FLAG_COUNTERS <= REGISTERED_COUNTERS

    def test_descriptions_are_nonempty(self):
        assert all(description.strip()
                   for description in PIPELINE_COUNTERS.values())

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_pipeline_emits_only_registered_counters(self, micro_dataset,
                                                     micro_config, backend):
        result = run_dibella(micro_dataset.reads,
                             config=micro_config.with_backend(backend),
                             n_nodes=1, ranks_per_node=2)
        unregistered = set(result.counters) - REGISTERED_COUNTERS
        assert unregistered == set()
