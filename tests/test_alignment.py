"""Unit and property tests for the alignment kernels (repro.align)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import inspect

from repro.align.banded import banded_smith_waterman
from repro.align.batch import (
    AlignmentTask,
    BatchAligner,
    TaskBatch,
    align_task,
    batched_xdrop_align,
)
from repro.align.batched_xdrop import (
    DEFAULT_XDROP_BAND,
    BatchedExtensionConfig,
    batched_extend,
)
from repro.align.results import AlignmentResult
from repro.align.scoring import ScoringScheme
from repro.align.smith_waterman import smith_waterman
from repro.align.xdrop import xdrop_extend, xdrop_seed_extend
from repro.seq.alphabet import reverse_complement
from repro.seq.encoding import encode_sequence

dna = st.text(alphabet="ACGT", min_size=0, max_size=80)


def mutate(seq: str, rate: float, seed: int) -> str:
    """Introduce substitutions/indels at the given rate (test helper)."""
    rng = np.random.default_rng(seed)
    out = []
    for base in seq:
        r = rng.random()
        if r < rate * 0.4:
            out.append("ACGT"[rng.integers(0, 4)])  # substitution
        elif r < rate * 0.7:
            out.append(base)
            out.append("ACGT"[rng.integers(0, 4)])  # insertion
        elif r < rate:
            pass  # deletion
        else:
            out.append(base)
    return "".join(out)


class TestScoring:
    def test_defaults(self):
        s = ScoringScheme()
        assert (s.match, s.mismatch, s.gap) == (1, -2, -2)
        assert s.max_score(10) == 10

    def test_validation(self):
        with pytest.raises(ValueError):
            ScoringScheme(match=0)
        with pytest.raises(ValueError):
            ScoringScheme(mismatch=1)
        with pytest.raises(ValueError):
            ScoringScheme(gap=2)


class TestSmithWaterman:
    def test_identical(self):
        result = smith_waterman("ACGTACGT", "ACGTACGT")
        assert result.score == 8
        assert result.cells == 64

    def test_empty(self):
        assert smith_waterman("", "ACGT").score == 0
        assert smith_waterman("ACGT", "").score == 0

    def test_contained_substring(self):
        result = smith_waterman("TTTACGTACGTTT", "ACGTACG", traceback=True)
        assert result.score == 7
        assert result.aligned_a == "ACGTACG"
        assert result.aligned_b == "ACGTACG"

    def test_no_similarity(self):
        assert smith_waterman("AAAAAAAA", "CCCCCCCC").score == 0

    def test_single_mismatch(self):
        # Nine aligned columns with one substitution: 8 matches - 2 = 6 under
        # the default (+1, -2, -2) scheme.
        result = smith_waterman("ACGTTTGCA", "ACGATTGCA")
        assert result.score == 6

    def test_gap_handling(self):
        result = smith_waterman("ACGTACGT", "ACGACGT")  # one deletion
        assert result.score == 5  # 7 matches - one gap (-2)

    def test_traceback_properties(self):
        a, b = "ACGGTACGTTACG", "ACGTACGTTACG"
        result = smith_waterman(a, b, traceback=True)
        assert result.aligned_a is not None and result.aligned_b is not None
        # §2's formal alignment properties:
        assert len(result.aligned_a) == len(result.aligned_b)
        assert all(not (x == "-" and y == "-")
                   for x, y in zip(result.aligned_a, result.aligned_b))
        assert result.aligned_a.replace("-", "") == a[result.start_a:result.end_a]
        assert result.aligned_b.replace("-", "") == b[result.start_b:result.end_b]

    def test_traceback_score_consistent(self):
        a, b = "GATTACAGATTACA", "GATTTACAGATACA"
        result = smith_waterman(a, b, traceback=True)
        scoring = ScoringScheme()
        recomputed = 0
        for x, y in zip(result.aligned_a, result.aligned_b):
            if x == "-" or y == "-":
                recomputed += scoring.gap
            elif x == y:
                recomputed += scoring.match
            else:
                recomputed += scoring.mismatch
        assert recomputed == result.score

    @given(dna.filter(lambda s: len(s) >= 4))
    @settings(max_examples=40)
    def test_self_alignment_is_perfect(self, seq):
        assert smith_waterman(seq, seq).score == len(seq)

    @given(dna, dna)
    @settings(max_examples=40)
    def test_symmetry_of_score(self, a, b):
        assert smith_waterman(a, b).score == smith_waterman(b, a).score

    @given(dna, dna)
    @settings(max_examples=40)
    def test_score_bounded(self, a, b):
        score = smith_waterman(a, b).score
        assert 0 <= score <= min(len(a), len(b))


class TestBanded:
    def test_matches_full_when_band_covers_all(self):
        a, b = "ACGGTACGTTACGGAT", "ACGTACGTTACGGTAT"
        full = smith_waterman(a, b).score
        banded = banded_smith_waterman(a, b, band=len(b)).score
        assert banded == full

    def test_narrow_band_is_lower_or_equal(self):
        a = "ACGTACGTACGTACGT"
        b = "TTTTTTTT" + a  # optimal alignment far off diagonal 0
        narrow = banded_smith_waterman(a, b, band=2).score
        wide = banded_smith_waterman(a, b, band=32).score
        assert narrow <= wide

    def test_diagonal_recentering(self):
        a = "ACGTACGTACGTACGT"
        b = "TTTTTTTT" + a
        off = banded_smith_waterman(a, b, band=4, diagonal=8).score
        assert off == len(a)

    def test_cells_bounded_by_band(self):
        a, b = "A" * 100, "A" * 100
        result = banded_smith_waterman(a, b, band=5)
        assert result.cells <= 100 * 11

    def test_invalid_band(self):
        with pytest.raises(ValueError):
            banded_smith_waterman("ACGT", "ACGT", band=0)

    def test_empty(self):
        assert banded_smith_waterman("", "ACGT").score == 0


class TestXdropScalar:
    def test_extend_identical(self):
        a = encode_sequence("ACGTACGTAC")
        result = xdrop_extend(a, a.copy(), ScoringScheme(), xdrop=10)
        assert result.score == 10
        assert result.length_a == 10
        assert result.length_b == 10

    def test_extend_stops_on_divergence(self):
        a = encode_sequence("ACGTACGT" + "A" * 40)
        b = encode_sequence("ACGTACGT" + "C" * 40)
        result = xdrop_extend(a, b, ScoringScheme(), xdrop=5)
        assert result.score == 8
        assert result.length_a <= 16
        # Far fewer cells than the full DP — the early-exit property.
        assert result.cells < len(a) * len(b) / 4

    def test_extend_empty(self):
        assert xdrop_extend(np.empty(0, dtype=np.uint8), encode_sequence("ACG"),
                            ScoringScheme(), 10).score == 0

    def test_seed_extend_recovers_overlap(self):
        genome = ("ACGGATTACCAGGTTAACCGGTTACAGGATCCGGATTAACCGGTTAACCGGATTACCGGTTAACC"
                  "GATTACAGGCTTAACGGTTACCGGATCGATCCGGTTAACACGTTGCAAGCTAGCTTACGGATCC")
        a = genome[:90]
        b = genome[50:]
        # Shared exact 17-mer at a[60:77] == genome[60:77] == b[10:27].
        result = xdrop_seed_extend(a, b, seed_a=60, seed_b=10, k=17, xdrop=20)
        assert result.score >= 35  # covers most of the 40-base true overlap
        assert result.start_a <= 52
        assert result.end_a == 90

    def test_seed_extend_invalid_seed(self):
        with pytest.raises(ValueError):
            xdrop_seed_extend("ACGT", "ACGT", seed_a=3, seed_b=0, k=4)

    def test_noisy_overlap_score_scales_with_length(self):
        rng = np.random.default_rng(11)
        core = "".join("ACGT"[i] for i in rng.integers(0, 4, size=400))
        a = core
        b = mutate(core, 0.15, seed=3)
        result = xdrop_seed_extend(a, b, seed_a=0, seed_b=0, k=1, xdrop=30)
        assert result.score > 100


class TestBatchedXdrop:
    def test_matches_scalar_on_identical_sequences(self):
        seqs = ["ACGTACGTACGTACGT", "GATTACAGATTACAGATTACA", "CCCCGGGGTTTTAAAA"]
        a_enc = [encode_sequence(s) for s in seqs]
        results = batched_extend(a_enc, [a.copy() for a in a_enc], ScoringScheme(),
                                 BatchedExtensionConfig(xdrop=10, band=9))
        for seq, res in zip(seqs, results):
            assert res.score == len(seq)
            assert res.length_a == len(seq)

    def test_empty_inputs(self):
        assert batched_extend([], [], ScoringScheme(), BatchedExtensionConfig()) == []
        res = batched_extend([np.empty(0, dtype=np.uint8)], [encode_sequence("ACG")],
                             ScoringScheme(), BatchedExtensionConfig())
        assert res[0].score == 0

    def test_divergent_pairs_terminate_early(self):
        rng = np.random.default_rng(7)
        a = [encode_sequence("".join("ACGT"[i] for i in rng.integers(0, 4, size=400)))]
        b = [encode_sequence("".join("ACGT"[i] for i in rng.integers(0, 4, size=400)))]
        res = batched_extend(a, b, ScoringScheme(), BatchedExtensionConfig(xdrop=10, band=17))
        assert res[0].cells < 400 * 17 / 2  # stopped long before the end

    def test_mixed_batch_isolated(self):
        # One perfect pair and one hopeless pair in the same batch must not
        # influence each other.
        good = encode_sequence("ACGTACGTACGTACGTACGT")
        bad_a = encode_sequence("AAAAAAAAAAAAAAAAAAAA")
        bad_b = encode_sequence("CCCCCCCCCCCCCCCCCCCC")
        res = batched_extend([good, bad_a], [good.copy(), bad_b], ScoringScheme(),
                             BatchedExtensionConfig(xdrop=10, band=9))
        assert res[0].score == 20
        assert res[1].score == 0

    def test_close_to_scalar_on_noisy_overlaps(self):
        rng = np.random.default_rng(5)
        tasks = []
        for i in range(10):
            core = "".join("ACGT"[j] for j in rng.integers(0, 4, size=300))
            tasks.append((core, mutate(core, 0.12, seed=i)))
        enc_a = [encode_sequence(a) for a, _ in tasks]
        enc_b = [encode_sequence(b) for _, b in tasks]
        batched = batched_extend(enc_a, enc_b, ScoringScheme(),
                                 BatchedExtensionConfig(xdrop=25, band=33))
        for (a, b), res in zip(tasks, batched):
            scalar = xdrop_extend(encode_sequence(a), encode_sequence(b),
                                  ScoringScheme(), xdrop=25)
            # The banded batch kernel may differ slightly from the unbounded
            # scalar extension but must be in the same ballpark.
            assert res.score >= 0.7 * scalar.score

    def test_config_validation(self):
        with pytest.raises(ValueError):
            BatchedExtensionConfig(xdrop=0)
        with pytest.raises(ValueError):
            BatchedExtensionConfig(band=1)


class TestBatchAligner:
    def _sequences(self):
        rng = np.random.default_rng(21)
        genome = "".join("ACGT"[i] for i in rng.integers(0, 4, size=600))
        return {
            0: genome[:400],
            1: mutate(genome[200:], 0.1, seed=1),
            2: reverse_complement(genome[150:450]),
        }

    def test_align_single_task(self):
        seqs = self._sequences()
        aligner = BatchAligner(sequences=seqs, kernel="xdrop", k=17)
        task = AlignmentTask(rid_a=0, rid_b=1, seed_pos_a=210, seed_pos_b=10)
        result = aligner.align(task)
        assert result.score > 50
        assert aligner.stats.alignments == 1
        assert aligner.stats.cells > 0

    def test_align_all_uses_batched_path(self):
        seqs = self._sequences()
        aligner = BatchAligner(sequences=seqs, kernel="xdrop", k=17)
        tasks = [
            AlignmentTask(rid_a=0, rid_b=1, seed_pos_a=210, seed_pos_b=10),
            AlignmentTask(rid_a=0, rid_b=1, seed_pos_a=300, seed_pos_b=100),
        ]
        results = aligner.align_all(tasks)
        assert len(results) == 2
        assert aligner.stats.alignments == 2
        assert all(r.score > 30 for r in results)

    def test_cross_strand_task(self):
        seqs = self._sequences()
        # Read 2 is the reverse complement of genome[150:450]; the k-mer at
        # genome position 200 appears at RC coordinate 300 - (200-150) - 17.
        rc_pos = 300 - (200 - 150) - 17
        task = AlignmentTask(rid_a=0, rid_b=2, seed_pos_a=200, seed_pos_b=rc_pos,
                             same_strand=False)
        scalar = align_task(task, seqs, kernel="xdrop", k=17)
        assert scalar.score > 80
        batched = batched_xdrop_align([task, task], seqs, k=17)
        assert batched[0].score > 80

    def test_kernel_choices(self):
        seqs = self._sequences()
        task = AlignmentTask(rid_a=0, rid_b=1, seed_pos_a=210, seed_pos_b=10)
        for kernel in ("xdrop", "banded", "full"):
            result = align_task(task, seqs, kernel=kernel, k=17)
            assert result.score > 0
            assert result.kernel in ("xdrop", "banded", "smith_waterman")

    def test_missing_read_raises(self):
        with pytest.raises(KeyError):
            align_task(AlignmentTask(0, 99, 0, 0), {0: "ACGT"}, k=2)

    def test_invalid_kernel(self):
        with pytest.raises(ValueError):
            BatchAligner(sequences={}, kernel="bogus")

    def test_min_score_accepts_counter(self):
        seqs = {0: "ACGT" * 50, 1: "TTTT" * 50}
        aligner = BatchAligner(sequences=seqs, kernel="xdrop", k=4, min_score=30)
        aligner.align(AlignmentTask(0, 1, 0, 0))
        assert aligner.stats.alignments == 1
        assert aligner.stats.accepted == 0

    def test_batch_size_does_not_change_scores(self):
        """Regression: the same task must score identically in any batch.

        The x-drop dispatch used to send singleton batches to the unbounded
        scalar kernel and larger batches to the banded batched kernel (with a
        different default band), so a task's score depended on how many other
        tasks its rank happened to hold.
        """
        seqs = self._sequences()
        tasks = [
            AlignmentTask(rid_a=0, rid_b=1, seed_pos_a=210, seed_pos_b=10),
            AlignmentTask(rid_a=0, rid_b=1, seed_pos_a=300, seed_pos_b=100),
            AlignmentTask(rid_a=0, rid_b=2, seed_pos_a=200, seed_pos_b=300 - 50 - 17,
                          same_strand=False),
        ]
        solo_results = [
            BatchAligner(sequences=seqs, kernel="xdrop", k=17).align_all([task])[0]
            for task in tasks
        ]
        batch_results = BatchAligner(sequences=seqs, kernel="xdrop", k=17).align_all(tasks)
        for solo, batched in zip(solo_results, batch_results):
            assert solo.score == batched.score
            assert (solo.start_a, solo.end_a, solo.start_b, solo.end_b) == (
                batched.start_a, batched.end_a, batched.start_b, batched.end_b)

    def test_align_matches_align_all_singleton(self):
        seqs = self._sequences()
        task = AlignmentTask(rid_a=0, rid_b=1, seed_pos_a=210, seed_pos_b=10)
        one = BatchAligner(sequences=seqs, kernel="xdrop", k=17).align(task)
        all_one = BatchAligner(sequences=seqs, kernel="xdrop", k=17).align_all([task])[0]
        assert one.score == all_one.score

    def test_band_defaults_agree_across_entry_points(self):
        """Regression: every x-drop entry point shares one default band."""
        assert BatchAligner(sequences={}).band == DEFAULT_XDROP_BAND
        assert BatchedExtensionConfig().band == DEFAULT_XDROP_BAND
        sig = inspect.signature(batched_xdrop_align)
        assert sig.parameters["band"].default == DEFAULT_XDROP_BAND
        from repro.core.config import PipelineConfig
        assert PipelineConfig().band == DEFAULT_XDROP_BAND

    def test_result_identity_helper(self):
        result = AlignmentResult(score=3, start_a=0, end_a=4, start_b=0, end_b=4,
                                 cells=16, kernel="smith_waterman",
                                 aligned_a="ACGT", aligned_b="ACTT")
        assert result.identity() == pytest.approx(0.75)
        assert result.span_a == 4
        no_tb = AlignmentResult(score=3, start_a=0, end_a=4, start_b=0, end_b=4,
                                cells=16, kernel="xdrop")
        assert no_tb.identity() is None


class TestTaskBatch:
    def _tasks(self):
        return [
            AlignmentTask(rid_a=0, rid_b=3, seed_pos_a=10, seed_pos_b=20),
            AlignmentTask(rid_a=1, rid_b=2, seed_pos_a=5, seed_pos_b=7, same_strand=False),
        ]

    def test_roundtrip_through_tasks(self):
        batch = TaskBatch.from_tasks(self._tasks())
        assert len(batch) == 2
        assert list(batch) == self._tasks()
        assert batch.task(1).same_strand is False

    def test_rids_unique_sorted(self):
        batch = TaskBatch.from_tasks(self._tasks() + self._tasks())
        np.testing.assert_array_equal(batch.rids(), [0, 1, 2, 3])

    def test_empty(self):
        batch = TaskBatch.empty()
        assert len(batch) == 0
        assert batch.rids().size == 0
        assert list(batch) == []
        assert len(TaskBatch.from_tasks([])) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            TaskBatch(rid_a=np.array([0]), rid_b=np.array([1, 2]),
                      seed_pos_a=np.array([0]), seed_pos_b=np.array([0]),
                      same_strand=np.array([True]))

    def test_aligner_accepts_task_batch(self):
        rng = np.random.default_rng(21)
        genome = "".join("ACGT"[i] for i in rng.integers(0, 4, size=600))
        seqs = {0: genome[:400], 1: mutate(genome[200:], 0.1, seed=1)}
        batch = TaskBatch.from_tasks(
            [AlignmentTask(rid_a=0, rid_b=1, seed_pos_a=210, seed_pos_b=10)])
        aligner = BatchAligner(sequences=seqs, kernel="xdrop", k=17)
        results = aligner.align_all(batch)
        assert len(results) == 1 and results[0].score > 30


class TestPadSequences:
    """The vectorised _pad_sequences against its per-row loop reference."""

    @staticmethod
    def _reference(seqs):
        from repro.align.batched_xdrop import _PAD
        n = len(seqs)
        max_len = max((s.size for s in seqs), default=0)
        out = np.full((n, max_len + 1), _PAD, dtype=np.uint8)
        for i, s in enumerate(seqs):
            out[i, : s.size] = s
        return out

    @given(st.lists(st.lists(st.integers(min_value=0, max_value=3),
                             min_size=0, max_size=60),
                    min_size=0, max_size=12))
    @settings(max_examples=60, deadline=None)
    def test_matches_loop_reference(self, rows):
        from repro.align.batched_xdrop import _pad_sequences
        seqs = [np.asarray(row, dtype=np.uint8) for row in rows]
        np.testing.assert_array_equal(_pad_sequences(seqs),
                                      self._reference(seqs))

    def test_edge_shapes(self):
        from repro.align.batched_xdrop import _PAD, _pad_sequences
        # No tasks -> a (0, 1) matrix; all-empty -> an all-PAD column.
        assert _pad_sequences([]).shape == (0, 1)
        all_empty = _pad_sequences([np.empty(0, dtype=np.uint8)] * 3)
        assert all_empty.shape == (3, 1) and (all_empty == _PAD).all()
        ragged = _pad_sequences([np.array([1, 2, 3], dtype=np.uint8),
                                 np.empty(0, dtype=np.uint8),
                                 np.array([0], dtype=np.uint8)])
        np.testing.assert_array_equal(
            ragged,
            np.array([[1, 2, 3, _PAD], [_PAD] * 4, [0, _PAD, _PAD, _PAD]],
                     dtype=np.uint8))
