"""Fault-injection and rank-failure recovery tests (``--fault-plan``).

Four layers (see ``docs/fault-tolerance.md``):

* grammar — the ``FaultPlan`` parser accepts the documented specs, rejects
  malformed ones at parse time, and binds run ordinals in launch order;
* runtime — injected kills/exits/delays fire at the exact superstep asked
  for, the thread backend rejects kill plans, and a randomized chaos sweep
  (hypothesis) pins that every (rank x superstep x action) combination ends
  in either bit-identical results or a typed :class:`RankFailedError` —
  never a hang, never orphaned processes or shared-memory segments;
* pool hygiene — a worker killed mid-``alltoallv_start`` (half-published
  split-phase segments) or while parked never wedges ``shutdown_rank_pools``
  and leaves nothing behind; the next pooled run lands on a fresh pool and
  the respawn is counted;
* service — the :class:`AlignmentService` retries failed builds/batches up
  to ``serve_max_retries`` with bit-identical science, surfaces retry
  exhaustion as the original :class:`RankFailedError`, and refuses work
  after shutdown.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import signal
import time

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import PipelineConfig
from repro.core.service import AlignmentService
from repro.mpisim import (
    FaultPlan,
    InjectedFaultError,
    RankFailedError,
    recovery_counters,
    reset_recovery_counters,
    shutdown_rank_pools,
    spmd_run,
)
from repro.mpisim.faults import FaultSpec, RunFaults, resolve_run_faults
from repro.mpisim.topology import Topology
from repro.seq.kmer import KmerSpec


def _shm_segments() -> list[str]:
    """Names of live POSIX shared-memory segments (empty off-POSIX)."""
    try:
        return [f for f in os.listdir("/dev/shm") if f.startswith("psm_")]
    except FileNotFoundError:  # pragma: no cover - non-POSIX-shm platform
        return []


def _await_no_workers(prefix: str = "spmd-") -> None:
    """Poll until no rank process with *prefix* survives (bounded)."""
    deadline = time.monotonic() + 10.0
    while (any(p.name.startswith(prefix) for p in mp.active_children())
           and time.monotonic() < deadline):
        time.sleep(0.05)
    assert not any(p.name.startswith(prefix) for p in mp.active_children())


# ---------------------------------------------------------------------------
# Rank programs (module-level so the process backend can run them)
# ---------------------------------------------------------------------------

def _chaos_program(comm, xs):
    """A short schedule touching every collective kind the faults can hit."""
    comm.barrier()                                          # superstep 0
    total = comm.allreduce(xs[comm.rank])                   # superstep 1
    send = [np.arange(comm.rank + d + 1, dtype=np.int64)
            for d in range(comm.size)]
    sync = comm.alltoallv(send, label="sync")               # superstep 2
    handle = comm.alltoallv_start(send, label="split")      # superstep 3
    split = comm.alltoallv_finish(handle)
    tag = comm.bcast("tag" if comm.rank == 0 else None, root=0)  # superstep 4
    return (total, tag,
            sum(int(block.sum()) for block in sync),
            sum(int(block.sum()) for block in split))


_CHAOS_XS = [3, 4]
#: _chaos_program's fault-free output for 2 ranks over _CHAOS_XS, computed
#: once on the thread backend and pinned against every recovered run.
_CHAOS_BASELINE = None


def _chaos_baseline():
    global _CHAOS_BASELINE
    if _CHAOS_BASELINE is None:
        _CHAOS_BASELINE = spmd_run(2, _chaos_program, _CHAOS_XS,
                                   backend="thread")
    return _CHAOS_BASELINE


# ---------------------------------------------------------------------------
# Grammar: parsing, validation, run binding
# ---------------------------------------------------------------------------

class TestFaultPlanGrammar:
    def test_parse_roundtrip(self):
        plan = FaultPlan.parse(
            "kill:rank=2:step=3; delay:rank=1:op=alltoallv[overlap]:ms=500; "
            "exit:rank=0:stage=alignment:run=1"
        )
        assert [spec.describe() for spec in plan.specs] == [
            "kill:rank=2:step=3",
            "delay:rank=1:op=alltoallv[overlap]:ms=500",
            "exit:rank=0:stage=alignment:run=1",
        ]
        assert plan.has_kill

    @pytest.mark.parametrize("bad", [
        "",                            # no specs at all
        "explode:rank=0",              # unknown action
        "kill:step=3",                 # missing rank
        "kill:rank=0:rank=1",          # duplicate field
        "kill:rank=0:when=now",        # unknown field
        "kill:rank=0:step",            # field without value
        "delay:rank=0",                # delay needs ms
        "kill:rank=-1",                # negative rank
        "kill:rank=zero",              # non-integer rank
    ])
    def test_malformed_plans_rejected_at_parse(self, bad):
        with pytest.raises(ValueError):
            FaultPlan.parse(bad)

    def test_spec_matching_criteria(self):
        spec = FaultSpec(action="exit", rank=1, step=2, op="alltoallv",
                         stage="alignment")
        assert spec.matches("alltoallv[overlap]", "alignment_exchange", 2)
        assert not spec.matches("alltoallv[overlap]", "alignment_exchange", 3)
        assert not spec.matches("allreduce", "alignment_exchange", 2)
        assert not spec.matches("alltoallv[overlap]", "bloom_exchange", 2)

    def test_run_binding_order_and_default(self):
        plan = FaultPlan.parse("exit:rank=0; kill:rank=1:run=2")
        run0 = plan.bind_next_run()
        assert [s.action for s in run0.specs] == ["exit"]  # run defaults to 0
        assert plan.bind_next_run() is None                # run 1: nothing
        run2 = plan.bind_next_run()
        assert [s.action for s in run2.specs] == ["kill"]
        assert run2.has_kill and not run0.has_kill

    def test_resolve_run_faults_forms(self):
        assert resolve_run_faults(None) is None
        assert resolve_run_faults(RunFaults(())) is None
        bound = resolve_run_faults("exit:rank=0")
        assert isinstance(bound, RunFaults) and len(bound.specs) == 1
        assert resolve_run_faults(bound) is bound
        with pytest.raises(TypeError):
            resolve_run_faults(42)

    def test_injector_only_for_targeted_ranks(self):
        bound = resolve_run_faults("exit:rank=1")
        assert bound.injector(0) is None
        assert bound.injector(1) is not None


# ---------------------------------------------------------------------------
# Runtime: thread-backend rejection, exact firing, chaos sweep
# ---------------------------------------------------------------------------

class TestThreadBackend:
    def test_kill_plan_rejected_with_clear_error(self):
        with pytest.raises(ValueError, match="thread backend cannot inject"):
            spmd_run(2, _chaos_program, _CHAOS_XS, backend="thread",
                     faults="kill:rank=1:step=1")

    def test_kill_plan_rejected_at_config_time(self):
        with pytest.raises(ValueError, match="kill"):
            PipelineConfig(kmer=KmerSpec(k=15), backend="thread",
                           fault_plan="kill:rank=0:step=1")

    def test_exit_fault_is_typed_and_located(self):
        with pytest.raises(RankFailedError) as err:
            spmd_run(2, _chaos_program, _CHAOS_XS, backend="thread",
                     faults="exit:rank=1:step=2")
        cause = err.value.__cause__
        assert isinstance(cause, InjectedFaultError)
        assert "rank 1" in str(cause) and "superstep 2" in str(cause)

    def test_delay_fault_is_bit_identical(self):
        delayed = spmd_run(2, _chaos_program, _CHAOS_XS, backend="thread",
                           faults="delay:rank=0:step=1:ms=50")
        assert delayed == _chaos_baseline()

    def test_op_criterion_hits_split_phase(self):
        with pytest.raises(RankFailedError) as err:
            spmd_run(2, _chaos_program, _CHAOS_XS, backend="thread",
                     faults="exit:rank=0:op=alltoallv[split]")
        assert "superstep 3" in str(err.value.__cause__)


class TestChaosSweep:
    """Randomized (rank x superstep x action) sweep on the process backend.

    Recovery contract under any injected fault: the run either completes
    with bit-identical results (the fault targeted a superstep past the
    schedule, or was a pure delay) or raises a typed
    :class:`RankFailedError` — and either way nothing leaks: no orphaned
    rank processes, no shared-memory segments.
    """

    @settings(max_examples=8, deadline=None, derandomize=True)
    @given(rank=st.integers(min_value=0, max_value=1),
           step=st.integers(min_value=0, max_value=6),
           action=st.sampled_from(["kill", "exit", "delay"]))
    def test_recovers_cleanly_or_fails_typed(self, rank, step, action):
        plan = f"{action}:rank={rank}:step={step}"
        if action == "delay":
            plan += ":ms=50"
        try:
            results = spmd_run(2, _chaos_program, _CHAOS_XS,
                               backend="process", faults=plan)
        except RankFailedError as err:
            assert action in ("kill", "exit")
            if action == "exit":
                assert isinstance(err.__cause__, InjectedFaultError)
        else:
            # Completed: a delay, or a step ordinal past the schedule.
            assert results == _chaos_baseline()
            assert action == "delay" or step >= 5
        _await_no_workers("spmd-")
        assert _shm_segments() == []

    def test_kill_is_detected_and_counted(self):
        reset_recovery_counters()
        with pytest.raises(RankFailedError) as err:
            spmd_run(2, _chaos_program, _CHAOS_XS, backend="process",
                     faults="kill:rank=1:step=2")
        assert "exited with code -9" in str(err.value.__cause__)
        assert recovery_counters()["rank_failures_detected"] == 1
        _await_no_workers("spmd-")
        assert _shm_segments() == []


# ---------------------------------------------------------------------------
# Pool hygiene: deaths never wedge shutdown, segments are reclaimed
# ---------------------------------------------------------------------------

class TestPoolFailureHygiene:
    @pytest.fixture(autouse=True)
    def _clean_pools(self):
        shutdown_rank_pools()
        reset_recovery_counters()
        yield
        shutdown_rank_pools()

    def test_kill_mid_split_phase_then_shutdown(self):
        """Regression: a worker killed inside ``alltoallv_start`` leaves
        half-published split-phase segments; eviction + shutdown must
        reclaim them without wedging on the dead waiter."""
        with pytest.raises(RankFailedError):
            spmd_run(2, _chaos_program, _CHAOS_XS, backend="process",
                     pool=True, faults="kill:rank=1:op=alltoallv[split]")
        start = time.monotonic()
        shutdown_rank_pools()  # already evicted: must be a prompt no-op
        assert time.monotonic() - start < 30.0
        _await_no_workers("spmd-pool-rank-")
        assert _shm_segments() == []
        # A fresh pool recovers.  The deliberate shutdown above reset the
        # eviction lineage, so this is a cold start, not a counted respawn
        # (the respawn accounting is pinned by
        # test_parked_worker_death_detected_on_next_run).
        results = spmd_run(2, _chaos_program, _CHAOS_XS, backend="process",
                           pool=True)
        assert results == _chaos_baseline()
        counters = recovery_counters()
        assert counters["rank_failures_detected"] >= 1
        assert counters["pool_respawns"] == 0

    def test_parked_worker_killed_then_shutdown_prompt(self):
        """Regression: SIGKILL a *parked* worker, then shutdown.  The old
        sentinel+barrier path would wedge inside multiprocessing's notify
        handshake (a dead process stays registered as a waiter)."""
        spmd_run(2, _chaos_program, _CHAOS_XS, backend="process", pool=True)
        victims = [p for p in mp.active_children()
                   if p.name.startswith("spmd-pool-rank-")]
        assert victims, "pooled run left no parked workers"
        os.kill(victims[0].pid, signal.SIGKILL)
        deadline = time.monotonic() + 10.0
        while victims[0].is_alive() and time.monotonic() < deadline:
            time.sleep(0.05)
        start = time.monotonic()
        shutdown_rank_pools()
        assert time.monotonic() - start < 30.0
        _await_no_workers("spmd-pool-rank-")
        assert _shm_segments() == []

    def test_parked_worker_death_detected_on_next_run(self):
        spmd_run(2, _chaos_program, _CHAOS_XS, backend="process", pool=True)
        victims = [p for p in mp.active_children()
                   if p.name.startswith("spmd-pool-rank-")]
        os.kill(victims[0].pid, signal.SIGKILL)
        deadline = time.monotonic() + 10.0
        while victims[0].is_alive() and time.monotonic() < deadline:
            time.sleep(0.05)
        with pytest.raises(RankFailedError, match="died while parked"):
            spmd_run(2, _chaos_program, _CHAOS_XS, backend="process",
                     pool=True)
        assert recovery_counters()["rank_failures_detected"] >= 1
        # The next pooled run starts a counted fresh pool and succeeds.
        results = spmd_run(2, _chaos_program, _CHAOS_XS, backend="process",
                           pool=True)
        assert results == _chaos_baseline()
        assert recovery_counters()["pool_respawns"] == 2
        assert _shm_segments() == []


# ---------------------------------------------------------------------------
# Service: retry-until-recovered, exhaustion, lifecycle guards
# ---------------------------------------------------------------------------

def _service_workload(dataset):
    """(index reads, query reads) split of a session-scoped dataset."""
    reads = dataset.reads
    n_index = max(1, int(len(reads) * 0.8))
    index = reads.subset(range(n_index))
    queries = [reads[rid] for rid in range(n_index, len(reads))]
    assert queries, "dataset too small to leave query reads"
    return index, queries


def _science(result) -> dict:
    """The science-only view of a result: alignment table + accept counts.

    Recovery legitimately perturbs bookkeeping counters (``index_build_runs``,
    ``read_cache_*``, the ``RECOVERY_COUNTERS``); the alignments must not
    move a bit.
    """
    table = result.alignment_table()
    return {
        "n_alignments": result.n_alignments,
        "accepted": result.counters.get("accepted_alignments", 0),
        "table": {key: value.tolist() for key, value in table.items()},
    }


class TestServiceErrorPaths:
    @pytest.fixture(autouse=True)
    def _clean_pools(self):
        shutdown_rank_pools()
        reset_recovery_counters()
        yield
        shutdown_rank_pools()

    @pytest.fixture()
    def workload(self, micro_dataset):
        return _service_workload(micro_dataset)

    def _config(self, **overrides) -> PipelineConfig:
        return PipelineConfig(kmer=KmerSpec(k=15), coverage_hint=12.0,
                              error_rate_hint=0.08, backend="thread",
                              **overrides)

    def test_submission_after_shutdown_raises(self, workload):
        index, queries = workload
        service = AlignmentService(index, config=self._config(),
                                   topology=Topology(1, 2))
        service.shutdown()
        with pytest.raises(RuntimeError, match="shut down"):
            service.submit(queries)
        with pytest.raises(RuntimeError, match="shut down"):
            service.build()
        with pytest.raises(RuntimeError, match="shut down"):
            service.drain()

    def test_empty_submission_rejected(self, workload):
        index, _queries = workload
        service = AlignmentService(index, config=self._config(),
                                   topology=Topology(1, 2))
        with pytest.raises(ValueError, match="empty query read set"):
            service.submit([])
        service.shutdown()

    def test_retry_exhaustion_surfaces_rank_failure(self, workload):
        index, queries = workload
        # Faults on runs 1 and 2 (the first batch and its only retry) with
        # one retry allowed: recovery must give up and re-raise.
        config = self._config(
            fault_plan="exit:rank=0:step=0:run=1;exit:rank=0:step=0:run=2",
            serve_max_retries=1)
        service = AlignmentService(index, config=config,
                                   topology=Topology(1, 2))
        service.submit(queries)
        with pytest.raises(RankFailedError) as err:
            service.drain()
        assert isinstance(err.value.__cause__, InjectedFaultError)
        service.shutdown()

    def test_zero_retries_disables_recovery(self, workload):
        index, queries = workload
        config = self._config(fault_plan="exit:rank=0:step=0:run=1",
                              serve_max_retries=0)
        service = AlignmentService(index, config=config,
                                   topology=Topology(1, 2))
        service.submit(queries)
        with pytest.raises(RankFailedError):
            service.drain()
        service.shutdown()

    def test_recovered_batch_counters_and_latency_stats(self, workload):
        index, queries = workload
        clean = AlignmentService(index, config=self._config(),
                                 topology=Topology(1, 2))
        clean.submit(queries)
        baseline = clean.drain()[0]
        clean.shutdown()
        shutdown_rank_pools()

        config = self._config(fault_plan="exit:rank=0:step=1:run=1",
                              serve_max_retries=2)
        service = AlignmentService(index, config=config,
                                   topology=Topology(1, 2))
        service.submit(queries)
        record = service.drain()[0]
        counters = record.result.counters
        assert counters["query_batch_retries"] == 1
        assert counters["recovery_seconds"] >= 1
        assert _science(record.result) == _science(baseline.result)
        stats = service.latency_stats()
        assert stats["batches"] == 1.0
        assert stats["reads"] == float(len(queries))
        assert stats["p50_seconds"] > 0.0
        # The retried attempt is inside the recorded latency.
        assert record.wall_seconds >= stats["p50_seconds"] * 0.5
        service.shutdown()


@pytest.mark.slow
class TestServeKillRecovery:
    """Acceptance pins: a pooled process-backend serve session survives a
    SIGKILLed rank — during the index build and during a query batch — with
    bit-identical alignments and nonzero recovery counters."""

    @pytest.fixture(autouse=True)
    def _clean_pools(self):
        shutdown_rank_pools()
        reset_recovery_counters()
        yield
        shutdown_rank_pools()

    def _run_session(self, micro_dataset, fault_plan):
        index, queries = _service_workload(micro_dataset)
        config = PipelineConfig(kmer=KmerSpec(k=15), coverage_hint=12.0,
                                error_rate_hint=0.08, backend="process",
                                fault_plan=fault_plan, serve_max_retries=2)
        service = AlignmentService(index, config=config,
                                   topology=Topology(1, 2))
        build = service.build()
        service.submit(queries)
        record = service.drain()[0]
        service.shutdown()
        return build, record

    def test_kill_during_build_recovers_bit_identical(self, micro_dataset):
        _build0, clean = self._run_session(micro_dataset, None)
        shutdown_rank_pools()
        reset_recovery_counters()
        build, record = self._run_session(micro_dataset,
                                          "kill:rank=1:step=1:run=0")
        assert build.counters["rank_failures_detected"] >= 1
        assert build.counters["pool_respawns"] == 2
        assert build.counters["recovery_seconds"] >= 1
        assert _science(record.result) == _science(clean.result)
        _await_no_workers("spmd-pool-rank-")
        assert _shm_segments() == []

    def test_kill_during_batch_recovers_bit_identical(self, micro_dataset):
        _build0, clean = self._run_session(micro_dataset, None)
        shutdown_rank_pools()
        reset_recovery_counters()
        _build, record = self._run_session(micro_dataset,
                                           "kill:rank=0:step=2:run=1")
        counters = record.result.counters
        assert counters["rank_failures_detected"] >= 1
        assert counters["pool_respawns"] == 2
        assert counters["query_batch_retries"] == 1
        assert counters["recovery_seconds"] >= 1
        assert _science(record.result) == _science(clean.result)
        _await_no_workers("spmd-pool-rank-")
        assert _shm_segments() == []


# ---------------------------------------------------------------------------
# Hier collectives: leader-hop faults ride the standard recovery machinery
# ---------------------------------------------------------------------------

def _two_leader_topology() -> Topology:
    """2 ranks, 2 groups: both ranks are leaders, so every byte of an
    exchange rides the leader-to-leader (``.../xgroup``) hop."""
    return Topology.single_node(2).with_groups(2)


class TestHierLeaderHopFaults:
    """The hier hops are ordinary collectives with standard segment naming,
    so eviction/reclaim and service retries cover them unchanged (the
    fault-plan ``op=`` criterion exact-matches a hop name like
    ``alltoallv[sync]/xgroup``)."""

    @pytest.fixture(autouse=True)
    def _clean_pools(self):
        shutdown_rank_pools()
        reset_recovery_counters()
        yield
        shutdown_rank_pools()

    def test_exit_at_leader_hop_is_targeted(self):
        with pytest.raises(RankFailedError) as err:
            spmd_run(2, _chaos_program, _CHAOS_XS, backend="thread",
                     topology=_two_leader_topology(),
                     faults="exit:rank=0:op=alltoallv[sync]/xgroup")
        cause = err.value.__cause__
        assert isinstance(cause, InjectedFaultError)
        assert "rank 0" in str(cause)

    def test_kill_at_leader_hop_leaves_no_orphans(self):
        with pytest.raises(RankFailedError):
            spmd_run(2, _chaos_program, _CHAOS_XS, backend="process",
                     topology=_two_leader_topology(),
                     faults="kill:rank=0:op=alltoallv[sync]/xgroup")
        assert recovery_counters()["rank_failures_detected"] >= 1
        _await_no_workers("spmd-")
        assert _shm_segments() == []

    def test_pooled_kill_at_split_gather_hop_then_recover(self):
        """A pooled worker killed at the split-phase gather hop leaves
        half-published leader-hop segments; eviction must reclaim them and
        a fresh pooled hier run must reproduce the flat baseline."""
        topology = _two_leader_topology()
        with pytest.raises(RankFailedError):
            spmd_run(2, _chaos_program, _CHAOS_XS, backend="process",
                     pool=True, topology=topology,
                     faults="kill:rank=1:op=alltoallv[split]/gather")
        start = time.monotonic()
        shutdown_rank_pools()
        assert time.monotonic() - start < 30.0
        _await_no_workers("spmd-pool-rank-")
        assert _shm_segments() == []
        results = spmd_run(2, _chaos_program, _CHAOS_XS, backend="process",
                           pool=True, topology=topology)
        assert results == _chaos_baseline()
        assert _shm_segments() == []

    def test_service_retry_under_hier_bit_identical(self, micro_dataset):
        index, queries = _service_workload(micro_dataset)
        flat_config = PipelineConfig(kmer=KmerSpec(k=15), coverage_hint=12.0,
                                     error_rate_hint=0.08, backend="thread")
        clean = AlignmentService(index, config=flat_config,
                                 topology=Topology(1, 2))
        clean.submit(queries)
        baseline = clean.drain()[0]
        clean.shutdown()
        shutdown_rank_pools()

        hier_config = (flat_config.with_collective("hier").with_rank_groups(2)
                       .with_fault_plan("exit:rank=0:"
                                        "op=alltoallv[query_route]/xgroup:run=1")
                       .with_serve_max_retries(2))
        service = AlignmentService(index, config=hier_config,
                                   topology=Topology(1, 2))
        service.submit(queries)
        record = service.drain()[0]
        assert record.result.counters["query_batch_retries"] == 1
        assert _science(record.result) == _science(baseline.result)
        service.shutdown()
