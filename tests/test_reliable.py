"""Unit tests for the BELLA reliable-k-mer model (repro.kmers.reliable)."""

import pytest

from repro.kmers.reliable import (
    estimate_distinct_kmers,
    estimate_total_kmers,
    expected_singleton_fraction,
    high_frequency_threshold,
    optimal_k,
    probability_correct_kmer,
    probability_shared_kmer,
    reliable_range,
)


class TestProbabilities:
    def test_correct_kmer_probability(self):
        assert probability_correct_kmer(0.0, 17) == 1.0
        assert probability_correct_kmer(0.15, 17) == pytest.approx(0.85**17)

    def test_correct_probability_decreases_with_k(self):
        assert probability_correct_kmer(0.1, 21) < probability_correct_kmer(0.1, 11)

    def test_shared_kmer_probability_monotone_in_overlap(self):
        p_short = probability_shared_kmer(0.15, 17, 500)
        p_long = probability_shared_kmer(0.15, 17, 5000)
        assert p_long > p_short

    def test_shared_kmer_zero_when_overlap_too_short(self):
        assert probability_shared_kmer(0.1, 17, 10) == 0.0

    def test_shared_kmer_high_for_typical_settings(self):
        # The paper's operating point: 17-mers, 10-15% error, >= 2 kbp overlap.
        assert probability_shared_kmer(0.15, 17, 2000) > 0.99

    def test_validation(self):
        with pytest.raises(ValueError):
            probability_correct_kmer(1.5, 17)
        with pytest.raises(ValueError):
            probability_correct_kmer(0.1, 0)


class TestOptimalK:
    def test_typical_long_read_value(self):
        # For PacBio-like error rates the paper says "17-mers are typical".
        k = optimal_k(0.12, min_overlap=2000)
        assert 15 <= k <= 23

    def test_lower_error_allows_longer_k(self):
        assert optimal_k(0.01, min_overlap=2000) > optimal_k(0.20, min_overlap=2000)

    def test_extreme_error_falls_back_to_kmin(self):
        assert optimal_k(0.6, min_overlap=300, k_min=9) == 9

    def test_validation(self):
        with pytest.raises(ValueError):
            optimal_k(0.1, target_probability=1.5)
        with pytest.raises(ValueError):
            optimal_k(0.1, k_min=20, k_max=10)


class TestThresholds:
    def test_threshold_scales_with_coverage(self):
        m30 = high_frequency_threshold(30, 0.12, 17)
        m100 = high_frequency_threshold(100, 0.12, 17)
        assert m100 > m30
        assert m30 >= 4

    def test_reliable_range(self):
        lo, hi = reliable_range(30, 0.12, 17)
        assert lo == 2
        assert hi == high_frequency_threshold(30, 0.12, 17)

    def test_validation(self):
        with pytest.raises(ValueError):
            high_frequency_threshold(0, 0.1, 17)
        with pytest.raises(ValueError):
            high_frequency_threshold(30, 0.1, 17, tail_probability=0.0)


class TestCardinalityEstimates:
    def test_total_kmers_is_gd(self):
        assert estimate_total_kmers(1_000_000, 30) == 30_000_000

    def test_distinct_estimate_between_genome_and_total(self):
        g, d = 1_000_000, 30
        distinct = estimate_distinct_kmers(g, d, 0.12, 17)
        assert g < distinct < estimate_total_kmers(g, d)

    def test_singleton_fraction_matches_paper_band(self):
        # §6: "up to 98% of k-mers from long reads are singletons".
        frac = expected_singleton_fraction(30, 0.12, 17)
        assert 0.90 < frac < 0.99

    def test_singleton_fraction_grows_with_error(self):
        assert (expected_singleton_fraction(30, 0.20, 17)
                > expected_singleton_fraction(30, 0.05, 17))

    def test_validation(self):
        with pytest.raises(ValueError):
            estimate_total_kmers(0, 30)
        with pytest.raises(ValueError):
            estimate_distinct_kmers(0, 30, 0.1, 17)
        with pytest.raises(ValueError):
            expected_singleton_fraction(0, 0.1, 17)
