"""Tests for the baselines and cross-validation against the pipeline."""

import pytest

pytestmark = pytest.mark.slow

from repro.baselines.bruteforce import brute_force_alignments, brute_force_overlaps
from repro.baselines.daligner import DalignerConfig, DalignerLikeOverlapper
from repro.core.driver import run_dibella
from repro.stats.quality import overlap_recall_precision


class TestBruteForce:
    def test_refuses_large_sets(self, micro_dataset):
        with pytest.raises(ValueError):
            brute_force_overlaps(micro_dataset.reads, max_reads=5)

    def test_finds_known_overlaps(self, toy_reads):
        # r0/r1, r1/r2, r0/r2 and r0/r3 genuinely overlap; r2/r3 do not.
        overlaps = brute_force_overlaps(toy_reads, min_score=30, max_reads=10)
        assert (0, 1) in overlaps
        assert (0, 3) in overlaps
        assert (2, 3) not in overlaps

    def test_alignment_results_have_scores(self, toy_reads):
        alignments = brute_force_alignments(toy_reads, min_score=30, max_reads=10)
        assert all(r.score >= 30 for r in alignments.values())


class TestDalignerBaseline:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            DalignerConfig(block_size=0)
        with pytest.raises(ValueError):
            DalignerConfig(max_kmer_freq=1)
        with pytest.raises(ValueError):
            DalignerConfig(min_shared_kmers=0)

    def test_runs_and_times_phases(self, micro_dataset):
        baseline = DalignerLikeOverlapper(DalignerConfig(k=15, block_size=32))
        result = baseline.run(micro_dataset.reads)
        assert result.n_alignments > 0
        assert len(result.overlap_pairs) > 0
        assert result.seconds_sort_merge > 0
        assert result.seconds_alignment > 0
        assert result.total_seconds == pytest.approx(
            result.seconds_sort_merge + result.seconds_alignment)

    def test_agrees_with_pipeline_on_true_overlaps(self, micro_dataset, micro_config):
        """Both detectors should recover most ground-truth overlaps."""
        truth = micro_dataset.true_overlaps(min_overlap=400)
        baseline = DalignerLikeOverlapper(DalignerConfig(k=15, block_size=64))
        baseline_quality = overlap_recall_precision(
            baseline.run(micro_dataset.reads).overlap_pairs, truth)
        pipeline_quality = overlap_recall_precision(
            run_dibella(micro_dataset.reads, config=micro_config,
                        ranks_per_node=2).overlap_pairs(), truth)
        assert baseline_quality.recall > 0.85
        assert pipeline_quality.recall > 0.85

    def test_block_decomposition_invariant(self, micro_dataset):
        """Changing the block size must not change the detected pairs."""
        small_blocks = DalignerLikeOverlapper(DalignerConfig(k=15, block_size=16))
        big_blocks = DalignerLikeOverlapper(DalignerConfig(k=15, block_size=1024))
        pairs_small = small_blocks.run(micro_dataset.reads).overlap_pairs
        pairs_big = big_blocks.run(micro_dataset.reads).overlap_pairs
        assert pairs_small == pairs_big
