"""Tests for the experiment harness, reporting helpers and the CLI."""

import numpy as np
import pytest

pytestmark = pytest.mark.slow

from repro.bench.harness import (
    BenchWorkloads,
    ExperimentHarness,
    SEED_STRATEGIES,
    TARGET_INPUT_BASES,
)
from repro.bench.experiments import table1_platforms
from repro.bench.reporting import format_series, format_table, rows_to_csv
from repro.cli import main
from repro.data.datasets import DatasetSpec
from repro.data.genome import GenomeSpec
from repro.data.reads import ReadSimSpec


@pytest.fixture(scope="module")
def tiny_harness():
    """A harness whose workloads are tiny enough for test-time pipeline runs."""
    workloads = BenchWorkloads(
        ecoli30x=DatasetSpec(
            name="t30", genome=GenomeSpec(length=2500, seed=1),
            reads=ReadSimSpec(coverage=12, mean_read_length=700, min_read_length=300,
                              error_rate=0.10, seed=2)),
        ecoli100x=DatasetSpec(
            name="t100", genome=GenomeSpec(length=1200, seed=3),
            reads=ReadSimSpec(coverage=25, mean_read_length=500, min_read_length=250,
                              error_rate=0.12, seed=4)),
        ecoli30x_sample=DatasetSpec(
            name="t30s", genome=GenomeSpec(length=1200, seed=5),
            reads=ReadSimSpec(coverage=12, mean_read_length=700, min_read_length=300,
                              error_rate=0.10, seed=6)),
    )
    return ExperimentHarness(workloads=workloads)


class TestHarness:
    def test_strategies_registered(self):
        assert set(SEED_STRATEGIES) == {"one-seed", "d=1000", "d=k"}

    def test_target_sizes_match_paper(self):
        # §5: 16,890 reads at 9,958 bp and 91,394 reads at 6,934 bp.
        assert TARGET_INPUT_BASES["ecoli30x"] == pytest.approx(1.68e8, rel=0.01)
        assert TARGET_INPUT_BASES["ecoli100x"] == pytest.approx(6.34e8, rel=0.01)

    def test_dataset_cached(self, tiny_harness):
        assert tiny_harness.dataset("ecoli30x") is tiny_harness.dataset("ecoli30x")
        with pytest.raises(KeyError):
            tiny_harness.dataset("unknown")

    def test_run_cached_and_projection(self, tiny_harness):
        run1 = tiny_harness.run("ecoli30x", "one-seed", n_nodes=2)
        run2 = tiny_harness.run("ecoli30x", "one-seed", n_nodes=2)
        assert run1 is run2
        projection = tiny_harness.project(run1, "cori", workload="ecoli30x")
        assert projection.total_seconds > 0
        assert {s.stage for s in projection.stages} == {"bloom", "hashtable",
                                                        "overlap", "alignment"}
        # Projection extrapolates to the full-size data set.
        assert projection.stage("bloom").items > run1.counters["kmers_received_bloom"]

    def test_platform_ordering_in_projection(self, tiny_harness):
        run = tiny_harness.run("ecoli30x", "one-seed", n_nodes=2)
        cori = tiny_harness.project(run, "cori", "ecoli30x").total_seconds
        titan = tiny_harness.project(run, "titan", "ecoli30x").total_seconds
        aws = tiny_harness.project(run, "aws", "ecoli30x").total_seconds
        assert cori < titan <= aws * 1.5

    def test_clear(self, tiny_harness):
        tiny_harness.run("ecoli30x", "one-seed", n_nodes=1)
        tiny_harness.clear()
        assert tiny_harness._runs == {}

    def test_pooled_sweep_runs_are_cache_isolated(self, tiny_harness):
        """Two pooled runs over the same reads must not share read caches.

        Pool routing amortises worker startup only: the second run reuses
        the first run's parked rank processes, but its per-run cache
        namespace makes those processes evict the previous run's read
        caches — so its measured fetch counters (and exchange volumes) are
        exactly what a cold run would record.
        """
        from repro.mpisim.backend import rank_pool_stats, shutdown_rank_pools

        pooled = ExperimentHarness(workloads=tiny_harness.workloads, pool=True)
        shutdown_rank_pools()
        # Force the process backend regardless of DIBELLA_BACKEND.
        base_config_for = pooled._config_for
        pooled._config_for = lambda name, strategy: (
            base_config_for(name, strategy).with_backend("process"))
        try:
            first = pooled.run("ecoli30x_sample", "one-seed", n_nodes=2)
            second = pooled.run("ecoli30x_sample", "d=1000", n_nodes=2)
            stats = rank_pool_stats()
            assert stats and stats[0]["runs_completed"] == 2  # pool reused
            assert first.counters["remote_reads_fetched"] > 0
            assert (second.counters["remote_reads_fetched"]
                    == first.counters["remote_reads_fetched"])
            assert second.counters["read_cache_fetch_hits"] == 0
            report = pooled.pool_report()
            assert report["pooled_runs"] == 2
            assert report["forks_avoided"] > 0
        finally:
            shutdown_rank_pools()


class TestReporting:
    ROWS = [
        {"platform": "cori", "nodes": 1, "value": 1.2345},
        {"platform": "cori", "nodes": 2, "value": 2.5},
        {"platform": "aws", "nodes": 1, "value": 0.5},
    ]

    def test_format_table(self):
        text = format_table(self.ROWS, title="demo")
        assert "demo" in text
        assert "platform" in text and "cori" in text
        assert "1.234" in text

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([])

    def test_format_series(self):
        text = format_series(self.ROWS, x="nodes", y="value", group="platform")
        assert "cori" in text and "1:1.234" in text and "2:2.500" in text

    def test_rows_to_csv(self):
        csv = rows_to_csv(self.ROWS)
        assert csv.splitlines()[0] == "platform,nodes,value"
        assert len(csv.splitlines()) == 4
        assert rows_to_csv([]) == ""

    def test_table1_experiment(self):
        rows = table1_platforms()
        assert [r["platform"] for r in rows] == ["cori", "edison", "titan", "aws"]


class TestCli:
    def test_platforms_command(self, capsys):
        assert main(["platforms"]) == 0
        out = capsys.readouterr().out
        assert "Cori" in out and "AWS" in out

    def test_simulate_and_run_roundtrip(self, tmp_path, capsys):
        fastq = tmp_path / "reads.fastq"
        assert main(["simulate", "--preset", "tiny", "--output", str(fastq)]) == 0
        assert fastq.exists()
        overlaps = tmp_path / "overlaps.tsv"
        assert main(["run", "--input", str(fastq), "-k", "15",
                     "--ranks-per-node", "2", "--overlaps-out", str(overlaps)]) == 0
        out = capsys.readouterr().out
        assert "overlap_pairs" in out
        lines = overlaps.read_text().splitlines()
        assert lines[0].startswith("rid_a")
        assert len(lines) > 10

    def test_experiment_command_table1(self, capsys):
        assert main(["experiment", "table1"]) == 0
        assert "cori" in capsys.readouterr().out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
