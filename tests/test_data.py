"""Unit tests for repro.data (genome generation, read simulation, presets)."""

import numpy as np
import pytest

from repro.data.datasets import (
    DatasetSpec,
    ecoli100x_like,
    ecoli30x_like,
    generate_dataset,
    tiny_dataset,
    true_overlaps,
)
from repro.data.genome import GenomeSpec, generate_genome, genome_summary
from repro.data.reads import ReadSimSpec, ReadSimulator
from repro.seq.alphabet import is_valid_dna
from repro.seq.records import Read, ReadSet


class TestGenome:
    def test_length_exact(self):
        genome = generate_genome(GenomeSpec(length=5000, seed=1))
        assert len(genome) == 5000
        assert is_valid_dna(genome)

    def test_deterministic(self):
        spec = GenomeSpec(length=2000, seed=7)
        assert generate_genome(spec) == generate_genome(spec)

    def test_different_seeds_differ(self):
        a = generate_genome(GenomeSpec(length=2000, seed=1))
        b = generate_genome(GenomeSpec(length=2000, seed=2))
        assert a != b

    def test_gc_content(self):
        genome = generate_genome(GenomeSpec(length=50_000, gc_content=0.7,
                                            repeat_fraction=0.0, seed=3))
        summary = genome_summary(genome)
        gc = summary["G"] + summary["C"]
        assert 0.65 < gc < 0.75

    def test_repeats_duplicate_kmers(self):
        # With heavy repeat content some k-mers must occur many times.
        from repro.kmers.counter import KmerCounter
        from repro.seq.kmer import KmerSpec
        genome = generate_genome(GenomeSpec(length=20_000, repeat_fraction=0.3,
                                            repeat_length=500, seed=4))
        counter = KmerCounter(KmerSpec(k=17))
        counter.add_read(genome)
        _, counts = counter.counts()
        assert counts.max() >= 3

    def test_invalid_specs(self):
        with pytest.raises(ValueError):
            GenomeSpec(length=0)
        with pytest.raises(ValueError):
            GenomeSpec(length=100, repeat_fraction=1.5)
        with pytest.raises(ValueError):
            GenomeSpec(length=100, gc_content=0.0)


class TestReadSimulator:
    def test_coverage_determines_read_count(self):
        genome = generate_genome(GenomeSpec(length=10_000, seed=1))
        sim = ReadSimulator(genome, ReadSimSpec(coverage=20, mean_read_length=1000, seed=2))
        n = sim.n_reads_for_coverage()
        assert n == 200
        reads = sim.simulate()
        assert len(reads) == n
        # Total bases should be within ~25% of G * d.
        assert abs(reads.total_bases - 200_000) / 200_000 < 0.25

    def test_reads_valid_dna_with_truth(self):
        genome = generate_genome(GenomeSpec(length=5_000, seed=1))
        sim = ReadSimulator(genome, ReadSimSpec(coverage=5, mean_read_length=800, seed=3))
        reads = sim.simulate()
        for read in reads:
            assert is_valid_dna(read.sequence)
            assert read.has_truth()
            assert read.true_end - read.true_start >= 1

    def test_zero_error_rate_reads_match_genome(self):
        genome = generate_genome(GenomeSpec(length=3_000, repeat_fraction=0.0, seed=1))
        spec = ReadSimSpec(coverage=3, mean_read_length=500, read_length_sigma=0.0,
                           error_rate=0.0, circular=False, seed=5)
        sim = ReadSimulator(genome, spec)
        for i in range(5):
            read = sim.simulate_read(i)
            fragment = genome[read.true_start:read.true_end]
            if read.true_strand == 1:
                assert read.sequence == fragment
            else:
                from repro.seq.alphabet import reverse_complement
                assert read.sequence == reverse_complement(fragment)

    def test_error_rate_changes_sequence(self):
        genome = generate_genome(GenomeSpec(length=3_000, seed=1))
        noisy = ReadSimulator(genome, ReadSimSpec(coverage=3, mean_read_length=500,
                                                  error_rate=0.2, seed=6))
        read = noisy.simulate_read(0)
        fragment = genome[read.true_start:read.true_end]
        assert read.sequence != fragment

    def test_deterministic(self):
        genome = generate_genome(GenomeSpec(length=3_000, seed=1))
        spec = ReadSimSpec(coverage=3, mean_read_length=500, seed=9)
        a = ReadSimulator(genome, spec).simulate(10)
        b = ReadSimulator(genome, spec).simulate(10)
        assert [r.sequence for r in a] == [r.sequence for r in b]

    def test_invalid_specs(self):
        with pytest.raises(ValueError):
            ReadSimSpec(coverage=0)
        with pytest.raises(ValueError):
            ReadSimSpec(error_rate=1.5)
        with pytest.raises(ValueError):
            ReadSimSpec(sub_fraction=0.5, ins_fraction=0.5, del_fraction=0.5)
        with pytest.raises(ValueError):
            ReadSimulator("", ReadSimSpec())


class TestPresetsAndTruth:
    def test_presets_scale(self):
        spec = ecoli30x_like(scale=0.001)
        assert spec.genome.length >= 4600 or spec.genome.length == 5000
        assert spec.reads.coverage == 30.0
        spec100 = ecoli100x_like(scale=0.001)
        assert spec100.reads.coverage == 100.0
        assert spec100.reads.error_rate > spec.reads.error_rate

    def test_tiny_dataset_generates(self):
        dataset = generate_dataset(tiny_dataset())
        assert len(dataset.reads) > 20
        assert len(dataset.genome) == 8000

    def test_true_overlaps_simple_intervals(self):
        reads = ReadSet([
            Read(name="a", sequence="A" * 100, true_start=0, true_end=1000),
            Read(name="b", sequence="A" * 100, true_start=500, true_end=1500),
            Read(name="c", sequence="A" * 100, true_start=2000, true_end=2500),
        ])
        overlaps = true_overlaps(reads, genome_length=5000, circular=False, min_overlap=100)
        assert (0, 1) in overlaps
        assert overlaps[(0, 1)] == 500
        assert (0, 2) not in overlaps
        assert (1, 2) not in overlaps

    def test_true_overlaps_respects_min_overlap(self):
        reads = ReadSet([
            Read(name="a", sequence="A" * 10, true_start=0, true_end=1000),
            Read(name="b", sequence="A" * 10, true_start=900, true_end=1900),
        ])
        assert (0, 1) in true_overlaps(reads, 5000, circular=False, min_overlap=50)
        assert (0, 1) not in true_overlaps(reads, 5000, circular=False, min_overlap=200)

    def test_true_overlaps_wraparound(self):
        # A read crossing the circular origin overlaps a read at the start.
        reads = ReadSet([
            Read(name="a", sequence="A" * 10, true_start=4500, true_end=5400),
            Read(name="b", sequence="A" * 10, true_start=0, true_end=900),
        ])
        overlaps = true_overlaps(reads, genome_length=5000, circular=True, min_overlap=100)
        assert (0, 1) in overlaps
        assert overlaps[(0, 1)] == 400
        # Without circularity the pair disappears.
        assert (0, 1) not in true_overlaps(reads, 5000, circular=False, min_overlap=100)

    def test_dataset_truth_cache(self):
        dataset = generate_dataset(tiny_dataset())
        first = dataset.true_overlaps()
        second = dataset.true_overlaps()
        assert first is second
