"""Unit tests for repro.netmodel (platforms, cost model, projection)."""

import numpy as np
import pytest

from repro.mpisim.topology import Topology
from repro.mpisim.tracing import CommTrace, PhaseTraffic
from repro.netmodel.costmodel import ComputeCostModel, CostModel, ExchangeCostModel
from repro.netmodel.platform import PLATFORMS, get_platform, list_platforms, table1_rows
from repro.netmodel.projection import project_pipeline, project_stage


class TestPlatforms:
    def test_registry_contents(self):
        assert list_platforms() == ["cori", "edison", "titan", "aws"]
        cori = get_platform("cori")
        # Table 1 values.
        assert cori.cores_per_node == 32
        assert cori.freq_ghz == 2.3
        assert cori.bw_node_mbps == 113.0
        assert get_platform("edison").cores_per_node == 24
        assert get_platform("titan").cores_per_node == 16

    def test_case_insensitive_and_unknown(self):
        assert get_platform("CORI") is get_platform("cori")
        with pytest.raises(KeyError):
            get_platform("summit")

    def test_node_compute_power_ordering(self):
        # Cori > Edison > Titan ~ AWS, as the paper's single-node rates show.
        power = {k: p.node_compute_power for k, p in PLATFORMS.items()}
        assert power["cori"] > power["edison"] > power["titan"]
        assert abs(power["titan"] - power["aws"]) / power["titan"] < 0.25

    def test_table1_rows(self):
        rows = table1_rows()
        assert len(rows) == 4
        assert {"platform", "cores_per_node", "bw_node_mbps"} <= set(rows[0])


class _FakeStage:
    """Minimal stage record for projection tests."""

    def __init__(self, name, work, items, phases, first=False, work_unit="generic"):
        self.name = name
        self.items = items
        self.work_unit = work_unit
        self.work_per_rank = np.asarray(work, dtype=np.float64)
        self.local_bytes_per_rank = np.full(len(work), 1e9)
        self.exchange_phases = phases
        self.includes_first_alltoallv = first


class TestComputeModel:
    def test_more_nodes_is_faster(self):
        model = ComputeCostModel()
        platform = get_platform("cori")
        total_work = 8e7  # same workload strong-scaled over 2 vs 8 nodes
        t2 = model.compute_time(np.full(2, total_work / 2), "generic", platform,
                                Topology(2, 1), local_bytes_per_rank=np.full(2, 1e9))
        t8 = model.compute_time(np.full(8, total_work / 8), "generic", platform,
                                Topology(8, 1), local_bytes_per_rank=np.full(8, 1e9))
        assert t8 < t2

    def test_imbalance_raises_time(self):
        model = ComputeCostModel()
        platform = get_platform("cori")
        balanced = model.compute_time(np.array([1e6, 1e6]), "generic", platform,
                                      Topology(2, 1), np.full(2, 1e9))
        skewed = model.compute_time(np.array([2e6, 0.0]), "generic", platform,
                                    Topology(2, 1), np.full(2, 1e9))
        assert skewed > balanced

    def test_cache_factor_superlinear(self):
        model = ComputeCostModel()
        platform = get_platform("cori")
        assert model.cache_factor(1e5, platform) > model.cache_factor(1e10, platform)
        assert model.cache_factor(1e10, platform) == pytest.approx(1.0)

    def test_faster_platform_is_faster(self):
        model = ComputeCostModel()
        work = np.full(4, 1e7)
        topo = Topology(4, 1)
        t_cori = model.compute_time(work, "generic", get_platform("cori"), topo)
        t_titan = model.compute_time(work, "generic", get_platform("titan"), topo)
        assert t_cori < t_titan

    def test_work_scale_linear(self):
        model = ComputeCostModel()
        platform = get_platform("edison")
        work = np.full(4, 1e6)
        topo = Topology(4, 1)
        base = model.compute_time(work, "generic", platform, topo)
        scaled = model.compute_time(work, "generic", platform, topo, work_scale=10.0)
        assert scaled == pytest.approx(10 * base)

    def test_zero_work(self):
        model = ComputeCostModel()
        assert model.compute_time(np.zeros(2), "generic", get_platform("aws"),
                                  Topology(2, 1)) == 0.0

    def test_shape_mismatch(self):
        model = ComputeCostModel()
        with pytest.raises(ValueError):
            model.compute_time(np.zeros(3), "generic", get_platform("aws"), Topology(2, 1))


class TestExchangeModel:
    def _traffic(self, n_ranks, volume):
        traffic = PhaseTraffic(n_ranks=n_ranks)
        traffic.volume[:] = volume
        traffic.messages[:] = (np.asarray(volume) > 0).astype(np.int64)
        traffic.collective_calls = 1
        return traffic

    def test_offnode_charged_at_network_rate(self):
        model = ExchangeCostModel()
        platform = get_platform("titan")
        # Two nodes, one rank each; 100 MB crossing between them.
        volume = np.array([[0, 100e6], [100e6, 0]])
        t = model.exchange_time(self._traffic(2, volume), platform, Topology(2, 1))
        expected_volume_term = 100e6 / (platform.effective_alltoall_bw_mbps * 1e6)
        assert t >= expected_volume_term

    def test_intranode_much_cheaper_than_offnode(self):
        model = ExchangeCostModel()
        platform = get_platform("cori")
        volume = np.array([[0, 50e6], [50e6, 0]])
        same_node = model.exchange_time(self._traffic(2, volume), platform, Topology(1, 2))
        cross_node = model.exchange_time(self._traffic(2, volume), platform, Topology(2, 1))
        assert same_node < cross_node

    def test_first_alltoallv_penalty(self):
        model = ExchangeCostModel()
        platform = get_platform("cori")
        volume = np.array([[0, 10e6], [10e6, 0]])
        base = model.exchange_time(self._traffic(2, volume), platform, Topology(2, 1))
        with_penalty = model.exchange_time(self._traffic(2, volume), platform,
                                           Topology(2, 1), includes_first_alltoallv=True)
        assert with_penalty > base

    def test_empty_traffic_is_free(self):
        model = ExchangeCostModel()
        assert model.exchange_time(PhaseTraffic(n_ranks=2), get_platform("aws"),
                                   Topology(2, 1)) == 0.0

    def test_aws_slower_than_cori(self):
        model = ExchangeCostModel()
        volume = np.array([[0, 50e6], [50e6, 0]])
        t_cori = model.exchange_time(self._traffic(2, volume), get_platform("cori"),
                                     Topology(2, 1))
        t_aws = model.exchange_time(self._traffic(2, volume), get_platform("aws"),
                                    Topology(2, 1))
        assert t_aws > t_cori

    def test_shape_mismatch(self):
        model = ExchangeCostModel()
        with pytest.raises(ValueError):
            model.exchange_time(PhaseTraffic(n_ranks=3), get_platform("aws"), Topology(2, 1))


class TestProjection:
    def _setup(self):
        topo = Topology(2, 1)
        trace = CommTrace(2)
        trace.set_phase(0, "phase_a")
        trace.set_phase(1, "phase_a")
        trace.record_send(0, [0, 1_000_000])
        trace.record_send(1, [1_000_000, 0])
        trace.record_collective_call("phase_a")
        stages = [
            _FakeStage("stage1", [1e6, 1e6], items=2_000_000, phases=["phase_a"], first=True),
            _FakeStage("stage2", [5e5, 5e5], items=1_000_000, phases=["missing_phase"]),
        ]
        return stages, trace, topo

    def test_project_pipeline_structure(self):
        stages, trace, topo = self._setup()
        projection = project_pipeline(stages, trace, get_platform("cori"), topo,
                                      platform_key="cori")
        assert projection.platform == "cori"
        assert [s.stage for s in projection.stages] == ["stage1", "stage2"]
        assert projection.total_seconds > 0
        assert projection.stage("stage1").exchange_seconds > 0
        # The missing phase contributes no exchange time.
        assert projection.stage("stage2").exchange_seconds == 0.0
        with pytest.raises(KeyError):
            projection.stage("nope")

    def test_breakdown_sums_to_100(self):
        stages, trace, topo = self._setup()
        projection = project_pipeline(stages, trace, get_platform("aws"), topo)
        breakdown = projection.breakdown()
        total_pct = sum(v["compute_pct"] + v["exchange_pct"] for v in breakdown.values())
        assert total_pct == pytest.approx(100.0)

    def test_scale_extrapolation(self):
        stages, trace, topo = self._setup()
        base = project_stage(stages[0], trace, get_platform("cori"), topo)
        scaled = project_stage(stages[0], trace, get_platform("cori"), topo, scale=100.0)
        assert scaled.compute_seconds == pytest.approx(100 * base.compute_seconds)
        assert scaled.items == 100 * base.items
        # Throughput stays in the same ballpark (latency terms are not scaled).
        assert scaled.items_per_second >= base.items_per_second

    def test_model_bundle_defaults(self):
        model = CostModel()
        assert isinstance(model.compute, ComputeCostModel)
        assert isinstance(model.exchange, ExchangeCostModel)
