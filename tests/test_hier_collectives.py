"""Hierarchical two-level collectives: bit parity with the flat engine.

The hierarchy (``--collective hier``, ``docs/topology.md``) is a pure
transport rearrangement — gather-to-leader, leader-to-leader, intra-group
scatter — so every observable except the schedule-flag counters must be
bit-identical to the flat single-level engine: collective results at the
communicator level (fast tier), and the full pipeline's tables, counters and
serve-phase batches across backends, pooling and buffering (slow tier).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import DibellaPipeline, PipelineConfig
from repro.core.counters import SCHEDULE_FLAG_COUNTERS
from repro.core.stages import reset_persistent_read_caches, reset_resident_indexes
from repro.mpisim.backend import shutdown_rank_pools
from repro.mpisim.collectives import pack_segments, unpack_segments
from repro.mpisim.runtime import spmd_run
from repro.mpisim.topology import Topology
from repro.mpisim.tracing import CommTrace
from repro.seq.kmer import KmerSpec
from repro.seq.records import ReadSet

RANKS = 4


class TestPackSegments:
    def test_homogeneous_roundtrip_bit_exact(self):
        segments = [np.arange(5, dtype=np.int64),
                    np.empty(0, dtype=np.int64),
                    np.array([7, -3], dtype=np.int64)]
        packed = pack_segments(segments)
        assert isinstance(packed, tuple) and len(packed) == 3
        restored = unpack_segments(packed)
        assert len(restored) == 3
        for original, back in zip(segments, restored):
            assert back.dtype == original.dtype
            np.testing.assert_array_equal(back, original)

    def test_trailing_shape_preserved(self):
        segments = [np.arange(6, dtype=np.uint32).reshape(3, 2),
                    np.arange(2, dtype=np.uint32).reshape(1, 2)]
        restored = unpack_segments(pack_segments(segments))
        assert restored[0].shape == (3, 2)
        assert restored[1].shape == (1, 2)

    def test_mixed_dtypes_fall_back_to_list(self):
        segments = [np.arange(3, dtype=np.int64), np.arange(3, dtype=np.int32)]
        packed = pack_segments(segments)
        assert isinstance(packed, list)
        assert unpack_segments(packed) == segments

    def test_non_array_entries_fall_back(self):
        segments = [np.arange(3), None, "reads"]
        packed = pack_segments(segments)
        assert isinstance(packed, list)

    def test_empty_list(self):
        assert pack_segments([]) == []
        assert unpack_segments([]) == []


def _alltoallv_program(comm):
    """One irregular exchange with per-pair distinguishable payloads."""
    send = [np.arange(comm.rank + d + 1, dtype=np.int64) + 100 * comm.rank + d
            for d in range(comm.size)]
    received = comm.alltoallv(send)
    return [np.asarray(r).tolist() for r in received]


def _split_phase_program(comm):
    """Two overlapping split-phase exchanges, as a chunked stage issues them."""
    out = []
    handle = None
    for chunk in range(3):
        send = [np.full(chunk + 1, 10 * comm.rank + d, dtype=np.int64)
                for d in range(comm.size)]
        next_handle = comm.alltoallv_start(send)
        if handle is not None:
            out.append([np.asarray(r).tolist()
                        for r in comm.alltoallv_finish(handle)])
        handle = next_handle
    out.append([np.asarray(r).tolist() for r in comm.alltoallv_finish(handle)])
    return out


def _object_program(comm):
    """Non-array payloads ride the hier hops through the list fallback."""
    send = [[f"{comm.rank}->{d}"] * (d + 1) for d in range(comm.size)]
    return comm.alltoallv(send)


def _grouped(n_ranks: int, n_groups: int) -> Topology:
    return Topology.single_node(n_ranks).with_groups(n_groups)


@pytest.mark.parametrize("backend", ["thread", "process"])
class TestHierExchangeParity:
    def test_alltoallv_matches_flat(self, backend):
        flat = spmd_run(RANKS, _alltoallv_program, backend=backend)
        hier = spmd_run(RANKS, _alltoallv_program, backend=backend,
                        topology=_grouped(RANKS, 2))
        assert hier == flat

    def test_split_phase_matches_flat(self, backend):
        flat = spmd_run(RANKS, _split_phase_program, backend=backend)
        hier = spmd_run(RANKS, _split_phase_program, backend=backend,
                        topology=_grouped(RANKS, 2))
        assert hier == flat

    def test_object_payloads_match_flat(self, backend):
        flat = spmd_run(RANKS, _object_program, backend=backend)
        hier = spmd_run(RANKS, _object_program, backend=backend,
                        topology=_grouped(RANKS, 2))
        assert hier == flat

    def test_degenerate_group_counts(self, backend):
        flat = spmd_run(RANKS, _alltoallv_program, backend=backend)
        # One group: a single gather/scatter domain, no leader-to-leader hop.
        assert spmd_run(RANKS, _alltoallv_program, backend=backend,
                        topology=_grouped(RANKS, 1)) == flat
        # Every rank its own leader: all traffic rides the cross-group hop.
        assert spmd_run(RANKS, _alltoallv_program, backend=backend,
                        topology=_grouped(RANKS, RANKS)) == flat

    def test_sanitizer_clean_under_hier(self, backend):
        hier = spmd_run(RANKS, _alltoallv_program, backend=backend,
                        topology=_grouped(RANKS, 2), sanitize=True)
        assert hier == spmd_run(RANKS, _alltoallv_program, backend=backend)


class TestHierTraceAccounting:
    def test_call_ordinals_match_flat(self):
        flat_trace, hier_trace = CommTrace(RANKS), CommTrace(RANKS)
        spmd_run(RANKS, _alltoallv_program, trace=flat_trace)
        spmd_run(RANKS, _alltoallv_program, trace=hier_trace,
                 topology=_grouped(RANKS, 2))
        # One logical call ordinal per exchange, same as flat: the hops do
        # not inflate the first-Alltoallv accounting or the per-phase calls.
        assert (hier_trace.snapshot()["alltoallv_calls"]
                == flat_trace.snapshot()["alltoallv_calls"])
        for phase in flat_trace.phases():
            assert (hier_trace.phase_traffic(phase).collective_calls
                    == flat_trace.phase_traffic(phase).collective_calls)

    def test_segments_follow_leader_protocol(self):
        topology = _grouped(RANKS, 2)
        trace = CommTrace(RANKS)
        spmd_run(RANKS, _alltoallv_program, trace=trace, topology=topology)
        messages = trace.phase_traffic("default").messages
        cross = topology.intergroup_mask()
        # Only the leader pair crosses groups, regardless of rank count.
        assert messages[cross].sum() == topology.n_groups * (topology.n_groups - 1)
        # Non-leader ranks talk to their leader only.
        leaders = set(topology.group_leaders)
        for rank in range(RANKS):
            if rank in leaders:
                continue
            sent_to = set(np.nonzero(messages[rank])[0].tolist())
            assert sent_to == {topology.leader_of(topology.group_of(rank))}

    def test_chunking_leaves_hop_bytes_invariant(self):
        """Hop byte accounting is linear in the logical payload (docs/topology.md)."""
        def chunked(comm, rows_per_chunk):
            rows = np.arange(12, dtype=np.int64).reshape(6, 2)
            for lo in range(0, 6, rows_per_chunk):
                comm.alltoallv([rows[lo:lo + rows_per_chunk]] * comm.size)

        totals = []
        for rows_per_chunk in (6, 2):
            trace = CommTrace(RANKS)
            spmd_run(RANKS, chunked, rows_per_chunk, trace=trace,
                     topology=_grouped(RANKS, 2))
            totals.append(trace.phase_traffic("default").volume.sum())
        assert totals[0] == totals[1]


def _science(counters: dict[str, int]) -> dict[str, int]:
    return {k: v for k, v in counters.items() if k not in SCHEDULE_FLAG_COUNTERS}


def _cleanup():
    shutdown_rank_pools()
    reset_persistent_read_caches()
    reset_resident_indexes()


@pytest.mark.slow
class TestHierPipelineParityMatrix:
    """{flat, hier} x {thread, process} x {pool} x {double-buffer}: the
    collective layout must never change tables, traces or science counters."""

    @pytest.fixture(autouse=True)
    def _clean_pool_state(self):
        _cleanup()
        yield
        _cleanup()

    @pytest.fixture(scope="class")
    def reference(self, micro_dataset, micro_config):
        from repro.core.driver import run_dibella

        return run_dibella(micro_dataset.reads,
                           config=micro_config.with_backend("thread"),
                           n_nodes=1, ranks_per_node=RANKS)

    @pytest.mark.parametrize("backend", ["thread", "process"])
    @pytest.mark.parametrize("pool", [False, True])
    def test_matrix_bit_identical(self, micro_dataset, micro_config, reference,
                                  backend, pool):
        from repro.core.driver import run_dibella

        config = (micro_config.with_backend(backend).with_pool(pool)
                  .with_collective("hier").with_rank_groups(2))
        result = run_dibella(micro_dataset.reads, config=config,
                             n_nodes=1, ranks_per_node=RANKS)
        assert result.overlap_pairs() == reference.overlap_pairs()
        table, ref_table = result.alignment_table(), reference.alignment_table()
        for column in ref_table:
            np.testing.assert_array_equal(table[column], ref_table[column])
        assert _science(result.counters) == _science(reference.counters)
        assert result.counters["collective_groups"] == 2
        assert result.counters["intragroup_bytes"] > 0
        assert result.counters["intergroup_bytes"] > 0

    @pytest.mark.parametrize("double_buffer", [False, True])
    def test_double_buffer_bit_identical(self, micro_dataset, micro_config,
                                         reference, double_buffer):
        from repro.core.driver import run_dibella

        config = (micro_config.with_backend("process")
                  .with_double_buffer(double_buffer)
                  .with_collective("hier").with_rank_groups(2))
        result = run_dibella(micro_dataset.reads, config=config,
                             n_nodes=1, ranks_per_node=RANKS)
        table, ref_table = result.alignment_table(), reference.alignment_table()
        for column in ref_table:
            np.testing.assert_array_equal(table[column], ref_table[column])
        assert _science(result.counters) == _science(reference.counters)

    def test_auto_group_count_runs(self, micro_dataset, micro_config, reference):
        """rank_groups=None resolves from the host layout and stays bit-exact."""
        from repro.core.driver import run_dibella

        config = micro_config.with_collective("hier")  # rank_groups=None
        result = run_dibella(micro_dataset.reads, config=config,
                             n_nodes=1, ranks_per_node=RANKS)
        assert 1 <= result.counters["collective_groups"] <= RANKS
        table, ref_table = result.alignment_table(), reference.alignment_table()
        for column in ref_table:
            np.testing.assert_array_equal(table[column], ref_table[column])


@pytest.mark.slow
class TestHierServePhase:
    """The leader hops must not perturb the build/serve split either."""

    def test_served_batches_match_flat(self, micro_dataset):
        reads = list(micro_dataset.reads)
        n_index = (3 * len(reads)) // 4
        index_reads, queries = ReadSet(reads[:n_index]), ReadSet(reads[n_index:])
        base = PipelineConfig(kmer=KmerSpec(k=15), coverage_hint=12.0,
                              error_rate_hint=0.08, backend="process", pool=True)
        tables = {}
        for label, config in (("flat", base),
                              ("hier", base.with_collective("hier")
                                           .with_rank_groups(2))):
            try:
                pipeline = DibellaPipeline(config=config,
                                           topology=Topology.single_node(RANKS))
                pipeline.build_index(index_reads)
                served = pipeline.run_query_batch(queries)
                tables[label] = served.alignment_table()
                assert served.counters["index_reuse_hits"] == RANKS
            finally:
                _cleanup()
        for column in tables["flat"]:
            np.testing.assert_array_equal(tables["hier"][column],
                                          tables["flat"][column])
