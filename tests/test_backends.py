"""Runtime-backend tests: process-backend collectives and thread/process parity.

The fast tier exercises the shared-memory process backend at the collective
level (same programs the thread-backend suite runs, plus error propagation
through process boundaries).  The slow tier runs the full pipeline under
both backends and asserts the *scientific output is identical* — the
distributed runtime is an implementation detail that must never change the
answer.
"""

import numpy as np
import pytest

from repro.mpisim.backend import ProcessBackend, ThreadBackend, resolve_backend
from repro.mpisim.errors import CollectiveMismatchError, RankFailedError
from repro.mpisim.runtime import spmd_run
from repro.mpisim.tracing import CommTrace


class TestResolveBackend:
    def test_names(self):
        assert isinstance(resolve_backend("thread"), ThreadBackend)
        assert isinstance(resolve_backend("process"), ProcessBackend)
        assert isinstance(resolve_backend(None), ThreadBackend)

    def test_instance_passthrough(self):
        backend = ThreadBackend()
        assert resolve_backend(backend) is backend

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            resolve_backend("mpi")


def _collective_program(comm):
    """One program touching every collective with typed payloads."""
    total = comm.allreduce(comm.rank + 1, op="sum")
    peak = comm.allreduce(np.full(4, comm.rank, dtype=np.uint8), op="max")
    send = [np.full(comm.rank + 1, d, dtype=np.int64) for d in range(comm.size)]
    received = comm.alltoallv(send)
    assert all(received[s].size == s + 1 for s in range(comm.size))
    assert all((received[s] == comm.rank).all() for s in range(comm.size))
    labels = comm.alltoall([f"{comm.rank}->{d}" for d in range(comm.size)])
    broadcast = comm.bcast("hello" if comm.rank == 1 else None, root=1)
    gathered = comm.gather(comm.rank * 2, root=0)
    everyone = comm.allgather(comm.rank)
    comm.barrier()
    return (total, int(peak.max()), labels[0], broadcast, gathered, everyone)


class TestProcessCollectives:
    def test_full_collective_program(self):
        results = spmd_run(3, _collective_program, backend="process")
        for rank, (total, peak, label, broadcast, gathered, everyone) in enumerate(results):
            assert total == 6
            assert peak == 2
            assert label == f"0->{rank}"
            assert broadcast == "hello"
            assert everyone == [0, 1, 2]
            assert gathered == ([0, 2, 4] if rank == 0 else None)

    def test_matches_thread_backend(self):
        thread = spmd_run(3, _collective_program, backend="thread")
        process = spmd_run(3, _collective_program, backend="process")
        assert thread == process

    def test_single_rank(self):
        assert spmd_run(1, lambda comm: comm.allreduce(41) + 1, backend="process") == [42]

    def test_typed_arrays_roundtrip_exactly(self):
        def program(comm):
            matrix = np.arange(12, dtype=np.uint64).reshape(6, 2) + np.uint64(comm.rank)
            return comm.allgather(matrix)

        results = spmd_run(2, program, backend="process")
        for gathered in results:
            assert gathered[0].dtype == np.uint64
            assert gathered[0].shape == (6, 2)
            np.testing.assert_array_equal(gathered[1] - gathered[0], np.uint64(1))

    def test_results_in_rank_order(self):
        assert spmd_run(4, lambda comm: comm.rank ** 2, backend="process") == [0, 1, 4, 9]


class TestProcessErrorHandling:
    def test_rank_exception_propagates(self):
        def program(comm):
            if comm.rank == 1:
                raise RuntimeError("boom")
            comm.barrier()  # would deadlock without abort handling

        with pytest.raises(RankFailedError, match="rank 1") as err:
            spmd_run(3, program, backend="process")
        assert isinstance(err.value.__cause__, RuntimeError)

    def test_collective_mismatch_detected(self):
        def program(comm):
            if comm.rank == 0:
                comm.barrier()
            else:
                comm.allreduce(1)

        with pytest.raises(RankFailedError) as err:
            spmd_run(2, program, backend="process")
        assert isinstance(err.value.__cause__, CollectiveMismatchError)

    def test_untyped_payload_rejected(self):
        class Opaque:
            pass

        def program(comm):
            return comm.allgather(Opaque())

        with pytest.raises(RankFailedError) as err:
            spmd_run(2, program, backend="process")
        assert "typed collectives protocol" in str(err.value.__cause__)

    def test_barrier_timeout_raises_not_silent_none(self, monkeypatch):
        # A barrier that breaks with no originating rank failure (a stalled
        # rank exceeding the collective timeout) must surface as an error,
        # never as a successful [None, ...] result list.
        import time

        from repro.mpisim import backend as backend_module

        monkeypatch.setattr(backend_module, "_BARRIER_TIMEOUT", 0.5)

        def program(comm):
            if comm.rank == 0:
                time.sleep(2.0)
            comm.barrier()
            return comm.rank

        with pytest.raises(RankFailedError, match="broken barrier"):
            spmd_run(2, program, backend="process")

    def test_no_shared_memory_leaked(self):
        import os

        def program(comm):
            comm.alltoallv([np.arange(100, dtype=np.int64)] * comm.size)
            return comm.allreduce(1)

        spmd_run(3, program, backend="process")
        try:
            segments = [f for f in os.listdir("/dev/shm") if f.startswith("psm_")]
        except FileNotFoundError:  # pragma: no cover - non-POSIX-shm platform
            segments = []
        assert segments == []


class TestProcessTracing:
    def test_trace_merged_identically_to_thread(self):
        def program(comm):
            comm.set_phase("phase_a")
            comm.alltoallv([np.zeros(comm.rank + 1, dtype=np.int64)] * comm.size)
            comm.set_phase("phase_b")
            comm.alltoallv([np.ones(2, dtype=np.int64)] * comm.size)

        thread_trace, process_trace = CommTrace(3), CommTrace(3)
        spmd_run(3, program, trace=thread_trace, backend="thread")
        spmd_run(3, program, trace=process_trace, backend="process")
        assert thread_trace.summary() == process_trace.summary()
        for phase in thread_trace.phases():
            np.testing.assert_array_equal(
                thread_trace.phase_traffic(phase).volume,
                process_trace.phase_traffic(phase).volume,
            )

    def test_exchange_counts_alltoallv_calls(self):
        # The unified _exchange accounting: alltoall and alltoallv both count
        # (chunked supersteps rely on this).
        def program(comm):
            comm.set_phase("p")
            comm.alltoall(list(range(comm.size)))
            comm.alltoallv([np.zeros(1, dtype=np.int64)] * comm.size)

        trace = CommTrace(2)
        spmd_run(2, program, trace=trace, backend="thread")
        assert trace.phase_traffic("p").collective_calls == 2
        assert trace.snapshot()["alltoallv_calls"] == 2


@pytest.mark.slow
class TestPipelineParity:
    """End-to-end: both backends must produce bit-identical science."""

    @pytest.fixture(scope="class")
    def runs(self, micro_dataset, micro_config):
        from repro.core.driver import run_dibella

        thread = run_dibella(micro_dataset.reads,
                             config=micro_config.with_backend("thread"),
                             n_nodes=1, ranks_per_node=3)
        process = run_dibella(micro_dataset.reads,
                              config=micro_config.with_backend("process"),
                              n_nodes=1, ranks_per_node=3)
        return thread, process

    def test_overlap_pairs_identical(self, runs):
        thread, process = runs
        assert thread.overlap_pairs() == process.overlap_pairs()

    def test_per_rank_overlap_tables_identical(self, runs):
        thread, process = runs
        for t_table, p_table in zip(thread.overlap_tables(), process.overlap_tables()):
            np.testing.assert_array_equal(t_table.rid_a, p_table.rid_a)
            np.testing.assert_array_equal(t_table.rid_b, p_table.rid_b)
            np.testing.assert_array_equal(t_table.seed_offsets, p_table.seed_offsets)
            np.testing.assert_array_equal(t_table.seed_pos_a, p_table.seed_pos_a)
            np.testing.assert_array_equal(t_table.seed_pos_b, p_table.seed_pos_b)
            np.testing.assert_array_equal(t_table.seed_same_strand,
                                          p_table.seed_same_strand)

    def test_alignment_tables_identical(self, runs):
        thread, process = runs
        t_table, p_table = thread.alignment_table(), process.alignment_table()
        for column in t_table:
            np.testing.assert_array_equal(t_table[column], p_table[column])

    def test_all_counters_identical(self, runs):
        thread, process = runs
        assert thread.counters == process.counters

    def test_trace_volumes_identical(self, runs):
        thread, process = runs
        assert thread.trace.total_bytes() == process.trace.total_bytes()
        for phase in thread.trace.phases():
            np.testing.assert_array_equal(
                thread.trace.phase_traffic(phase).volume,
                process.trace.phase_traffic(phase).volume,
            )

    def test_chunked_exchange_invariant_under_chunk_size(self, micro_dataset,
                                                         micro_config):
        from dataclasses import replace

        from repro.core.driver import run_dibella

        monolithic = run_dibella(micro_dataset.reads,
                                 config=replace(micro_config, exchange_chunk_mb=None),
                                 ranks_per_node=2)
        streamed = run_dibella(micro_dataset.reads,
                               config=replace(micro_config, exchange_chunk_mb=0.001),
                               ranks_per_node=2)
        assert streamed.overlap_pairs() == monolithic.overlap_pairs()
        assert streamed.counters["pairs_generated"] == monolithic.counters["pairs_generated"]
        assert (streamed.counters["overlap_exchange_chunks"]
                > monolithic.counters["overlap_exchange_chunks"])
        # Same total exchange volume, more collective calls (per-chunk trace).
        assert (streamed.trace.phase_traffic("overlap_exchange").total_bytes
                == monolithic.trace.phase_traffic("overlap_exchange").total_bytes)
        assert (streamed.trace.phase_traffic("overlap_exchange").collective_calls
                > monolithic.trace.phase_traffic("overlap_exchange").collective_calls)

    def test_read_cache_counters_present(self, runs):
        thread, _process = runs
        assert thread.counters["read_cache_misses"] > 0
        assert thread.counters["read_cache_hits"] > 0
