"""Runtime-backend tests: process-backend collectives and thread/process parity.

The fast tier exercises the shared-memory process backend at the collective
level (same programs the thread-backend suite runs, plus error propagation
through process boundaries).  The slow tier runs the full pipeline under
both backends and asserts the *scientific output is identical* — the
distributed runtime is an implementation detail that must never change the
answer.
"""

import os
import time

import numpy as np
import pytest

from repro.mpisim.backend import (
    ProcessBackend,
    ThreadBackend,
    active_rank_pools,
    resolve_backend,
    shutdown_rank_pools,
)
from repro.core.counters import SCHEDULE_FLAG_COUNTERS
from repro.mpisim.errors import CollectiveMismatchError, RankFailedError
from repro.mpisim.runtime import spmd_run
from repro.mpisim.tracing import CommTrace


def _shm_segments() -> list[str]:
    """Names of live POSIX shared-memory segments (empty off-POSIX)."""
    try:
        return [f for f in os.listdir("/dev/shm") if f.startswith("psm_")]
    except FileNotFoundError:  # pragma: no cover - non-POSIX-shm platform
        return []


class TestResolveBackend:
    def test_names(self):
        assert isinstance(resolve_backend("thread"), ThreadBackend)
        assert isinstance(resolve_backend("process"), ProcessBackend)
        assert isinstance(resolve_backend(None), ThreadBackend)

    def test_instance_passthrough(self):
        backend = ThreadBackend()
        assert resolve_backend(backend) is backend

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            resolve_backend("mpi")


def _collective_program(comm):
    """One program touching every collective with typed payloads."""
    total = comm.allreduce(comm.rank + 1, op="sum")
    peak = comm.allreduce(np.full(4, comm.rank, dtype=np.uint8), op="max")
    send = [np.full(comm.rank + 1, d, dtype=np.int64) for d in range(comm.size)]
    received = comm.alltoallv(send)
    assert all(received[s].size == s + 1 for s in range(comm.size))
    assert all((received[s] == comm.rank).all() for s in range(comm.size))
    labels = comm.alltoall([f"{comm.rank}->{d}" for d in range(comm.size)])
    broadcast = comm.bcast("hello" if comm.rank == 1 else None, root=1)
    gathered = comm.gather(comm.rank * 2, root=0)
    everyone = comm.allgather(comm.rank)
    comm.barrier()
    return (total, int(peak.max()), labels[0], broadcast, gathered, everyone)


class TestProcessCollectives:
    def test_full_collective_program(self):
        results = spmd_run(3, _collective_program, backend="process")
        for rank, (total, peak, label, broadcast, gathered, everyone) in enumerate(results):
            assert total == 6
            assert peak == 2
            assert label == f"0->{rank}"
            assert broadcast == "hello"
            assert everyone == [0, 1, 2]
            assert gathered == ([0, 2, 4] if rank == 0 else None)

    def test_matches_thread_backend(self):
        thread = spmd_run(3, _collective_program, backend="thread")
        process = spmd_run(3, _collective_program, backend="process")
        assert thread == process

    def test_single_rank(self):
        assert spmd_run(1, lambda comm: comm.allreduce(41) + 1, backend="process") == [42]

    def test_typed_arrays_roundtrip_exactly(self):
        def program(comm):
            matrix = np.arange(12, dtype=np.uint64).reshape(6, 2) + np.uint64(comm.rank)
            return comm.allgather(matrix)

        results = spmd_run(2, program, backend="process")
        for gathered in results:
            assert gathered[0].dtype == np.uint64
            assert gathered[0].shape == (6, 2)
            np.testing.assert_array_equal(gathered[1] - gathered[0], np.uint64(1))

    def test_results_in_rank_order(self):
        assert spmd_run(4, lambda comm: comm.rank ** 2, backend="process") == [0, 1, 4, 9]


class TestProcessErrorHandling:
    def test_rank_exception_propagates(self):
        def program(comm):
            if comm.rank == 1:
                raise RuntimeError("boom")
            comm.barrier()  # would deadlock without abort handling

        with pytest.raises(RankFailedError, match="rank 1") as err:
            spmd_run(3, program, backend="process")
        assert isinstance(err.value.__cause__, RuntimeError)

    def test_collective_mismatch_detected(self):
        def program(comm):
            if comm.rank == 0:
                comm.barrier()
            else:
                comm.allreduce(1)

        with pytest.raises(RankFailedError) as err:
            spmd_run(2, program, backend="process")
        assert isinstance(err.value.__cause__, CollectiveMismatchError)

    def test_untyped_payload_rejected(self):
        class Opaque:
            pass

        def program(comm):
            return comm.allgather(Opaque())

        with pytest.raises(RankFailedError) as err:
            spmd_run(2, program, backend="process")
        assert "typed collectives protocol" in str(err.value.__cause__)

    def test_barrier_timeout_raises_not_silent_none(self, monkeypatch):
        # A barrier that breaks with no originating rank failure (a stalled
        # rank exceeding the collective timeout) must surface as an error,
        # never as a successful [None, ...] result list.
        import time

        from repro.mpisim import backend as backend_module

        monkeypatch.setattr(backend_module, "_BARRIER_TIMEOUT", 0.5)
        # Under DIBELLA_SANITIZE=1 runs the sanitizer watchdog governs the
        # wait instead; tighten it too so the stall still errors promptly.
        monkeypatch.setenv("DIBELLA_SANITIZE_TIMEOUT", "0.5")

        def program(comm):
            if comm.rank == 0:
                time.sleep(2.0)
            comm.barrier()
            return comm.rank

        with pytest.raises(RankFailedError, match="broken barrier|watchdog"):
            spmd_run(2, program, backend="process")

    def test_no_shared_memory_leaked(self):
        def program(comm):
            comm.alltoallv([np.arange(100, dtype=np.int64)] * comm.size)
            return comm.allreduce(1)

        spmd_run(3, program, backend="process")
        assert _shm_segments() == []


def _split_phase_program(comm):
    """Pipelined supersteps: start(i+1) is issued before finish(i)."""
    n_steps = 4
    sends = [
        [np.arange(step + d + comm.rank * 7, dtype=np.int64)
         for d in range(comm.size)]
        for step in range(n_steps)
    ]
    received = []
    handle = comm.alltoallv_start(sends[0])
    for step in range(n_steps):
        next_handle = (comm.alltoallv_start(sends[step + 1])
                       if step + 1 < n_steps else None)
        received.append([a.tolist() for a in comm.alltoallv_finish(handle)])
        handle = next_handle
    return received


def _sync_phase_program(comm):
    """The same exchanges as :func:`_split_phase_program`, bulk-synchronous."""
    n_steps = 4
    sends = [
        [np.arange(step + d + comm.rank * 7, dtype=np.int64)
         for d in range(comm.size)]
        for step in range(n_steps)
    ]
    return [[a.tolist() for a in comm.alltoallv(s)] for s in sends]


class TestSplitPhaseExchange:
    """The double-buffered alltoallv_start/alltoallv_finish protocol."""

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_matches_synchronous_alltoallv(self, backend):
        split = spmd_run(3, _split_phase_program, backend=backend)
        sync = spmd_run(3, _sync_phase_program, backend=backend)
        assert split == sync

    def test_thread_process_identical(self):
        assert (spmd_run(3, _split_phase_program, backend="thread")
                == spmd_run(3, _split_phase_program, backend="process"))

    def test_single_rank(self):
        results = spmd_run(1, _split_phase_program, backend="process")
        assert results == spmd_run(1, _sync_phase_program, backend="thread")

    def test_no_shared_memory_leaked(self):
        spmd_run(3, _split_phase_program, backend="process")
        assert _shm_segments() == []

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_trace_identical_to_synchronous(self, backend):
        split_trace, sync_trace = CommTrace(3), CommTrace(3)
        spmd_run(3, _split_phase_program, trace=split_trace, backend=backend)
        spmd_run(3, _sync_phase_program, trace=sync_trace, backend=backend)
        assert split_trace.summary() == sync_trace.summary()
        assert (split_trace.snapshot()["alltoallv_calls"]
                == sync_trace.snapshot()["alltoallv_calls"])

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_peer_failure_unblocks_finish(self, backend):
        def program(comm):
            handle = comm.alltoallv_start([np.zeros(1, dtype=np.int64)] * comm.size)
            if comm.rank == 1:
                raise RuntimeError("boom mid-exchange")
            comm.alltoallv_finish(handle)
            # Rank 1 never publishes its remaining supersteps, so without the
            # abort propagating through the handshake this would deadlock.
            h2 = comm.alltoallv_start([np.zeros(1, dtype=np.int64)] * comm.size)
            h3 = comm.alltoallv_start([np.zeros(1, dtype=np.int64)] * comm.size)
            comm.alltoallv_finish(h2)
            comm.alltoallv_finish(h3)

        with pytest.raises(RankFailedError, match="rank 1"):
            spmd_run(3, program, backend=backend)
        if backend == "process":
            assert _shm_segments() == []


def _pool_pid_program(comm):
    total = comm.allreduce(comm.rank + 1)
    received = comm.alltoallv([np.full(3, comm.rank, dtype=np.int64)] * comm.size)
    return (os.getpid(), total, [int(a[0]) for a in received])


def _pool_failing_program(comm):
    if comm.rank == 1:
        raise RuntimeError("pooled boom")
    comm.barrier()


class TestRankPool:
    """The persistent process-rank pool: reuse, eviction, clean shutdown."""

    @pytest.fixture(autouse=True)
    def _clean_pools(self):
        shutdown_rank_pools()
        yield
        shutdown_rank_pools()

    def test_consecutive_runs_reuse_rank_processes(self):
        first = spmd_run(3, _pool_pid_program, backend="process", pool=True)
        second = spmd_run(3, _pool_pid_program, backend="process", pool=True)
        assert [r[0] for r in first] == [r[0] for r in second]  # same PIDs
        assert [r[1:] for r in first] == [r[1:] for r in second]
        unpooled = spmd_run(3, _pool_pid_program, backend="process")
        assert [r[1:] for r in first] == [r[1:] for r in unpooled]
        assert active_rank_pools() == 1

    def test_split_phase_works_across_pooled_runs(self):
        # The engine's exchange sequence state must be re-armed between runs.
        first = spmd_run(3, _split_phase_program, backend="process", pool=True)
        second = spmd_run(3, _split_phase_program, backend="process", pool=True)
        assert first == second

    def test_failure_evicts_pool_and_next_run_recovers(self):
        baseline = spmd_run(3, _pool_pid_program, backend="process", pool=True)
        with pytest.raises(RankFailedError, match="pooled boom"):
            spmd_run(3, _pool_failing_program, backend="process", pool=True)
        assert active_rank_pools() == 0
        recovered = spmd_run(3, _pool_pid_program, backend="process", pool=True)
        assert [r[1:] for r in recovered] == [r[1:] for r in baseline]

    def test_shutdown_leaves_no_orphans_or_segments(self):
        import multiprocessing as mp

        spmd_run(3, _pool_pid_program, backend="process", pool=True)
        assert any(p.name.startswith("spmd-pool-rank-") for p in mp.active_children())
        shutdown_rank_pools()
        assert active_rank_pools() == 0
        deadline = time.monotonic() + 10.0
        while (any(p.name.startswith("spmd-pool-rank-") for p in mp.active_children())
               and time.monotonic() < deadline):
            time.sleep(0.05)
        assert not any(p.name.startswith("spmd-pool-rank-")
                       for p in mp.active_children())
        assert _shm_segments() == []

    def test_thread_backend_ignores_pool_flag(self):
        assert spmd_run(2, _pool_pid_program, backend="thread", pool=True) \
            == spmd_run(2, _pool_pid_program, backend="thread")
        assert active_rank_pools() == 0

    def test_unpicklable_job_raises_instead_of_hanging(self):
        # Queue.put pickles in a feeder thread whose failure is silent; the
        # pool must surface the pickling error in the caller (and stay
        # usable) instead of stranding the workers.
        with pytest.raises(TypeError, match="not picklable"):
            spmd_run(2, lambda comm: comm.allreduce(1),
                     backend="process", pool=True)
        assert spmd_run(2, _pool_pid_program, backend="process", pool=True)[0][1] == 3

    def test_dead_parked_worker_detected_not_hung(self):
        from repro.mpisim.backend import _POOLS

        baseline = spmd_run(3, _pool_pid_program, backend="process", pool=True)
        pool = next(iter(_POOLS.values()))
        victim = pool.workers[1]
        victim.terminate()  # dies while parked
        victim.join(timeout=10.0)
        with pytest.raises(RankFailedError, match="died while parked"):
            spmd_run(3, _pool_pid_program, backend="process", pool=True)
        assert active_rank_pools() == 0
        recovered = spmd_run(3, _pool_pid_program, backend="process", pool=True)
        assert [r[1:] for r in recovered] == [r[1:] for r in baseline]


class TestProcessTracing:
    def test_trace_merged_identically_to_thread(self):
        def program(comm):
            comm.set_phase("phase_a")
            comm.alltoallv([np.zeros(comm.rank + 1, dtype=np.int64)] * comm.size)
            comm.set_phase("phase_b")
            comm.alltoallv([np.ones(2, dtype=np.int64)] * comm.size)

        thread_trace, process_trace = CommTrace(3), CommTrace(3)
        spmd_run(3, program, trace=thread_trace, backend="thread")
        spmd_run(3, program, trace=process_trace, backend="process")
        assert thread_trace.summary() == process_trace.summary()
        for phase in thread_trace.phases():
            np.testing.assert_array_equal(
                thread_trace.phase_traffic(phase).volume,
                process_trace.phase_traffic(phase).volume,
            )

    def test_exchange_counts_alltoallv_calls(self):
        # The unified _exchange accounting: alltoall and alltoallv both count
        # (chunked supersteps rely on this).
        def program(comm):
            comm.set_phase("p")
            comm.alltoall(list(range(comm.size)))
            comm.alltoallv([np.zeros(1, dtype=np.int64)] * comm.size)

        trace = CommTrace(2)
        spmd_run(2, program, trace=trace, backend="thread")
        assert trace.phase_traffic("p").collective_calls == 2
        assert trace.snapshot()["alltoallv_calls"] == 2


@pytest.mark.slow
class TestPipelineParity:
    """End-to-end: both backends must produce bit-identical science."""

    @pytest.fixture(scope="class")
    def runs(self, micro_dataset, micro_config):
        from repro.core.driver import run_dibella

        thread = run_dibella(micro_dataset.reads,
                             config=micro_config.with_backend("thread"),
                             n_nodes=1, ranks_per_node=3)
        process = run_dibella(micro_dataset.reads,
                              config=micro_config.with_backend("process"),
                              n_nodes=1, ranks_per_node=3)
        return thread, process

    def test_overlap_pairs_identical(self, runs):
        thread, process = runs
        assert thread.overlap_pairs() == process.overlap_pairs()

    def test_per_rank_overlap_tables_identical(self, runs):
        thread, process = runs
        for t_table, p_table in zip(thread.overlap_tables(), process.overlap_tables()):
            np.testing.assert_array_equal(t_table.rid_a, p_table.rid_a)
            np.testing.assert_array_equal(t_table.rid_b, p_table.rid_b)
            np.testing.assert_array_equal(t_table.seed_offsets, p_table.seed_offsets)
            np.testing.assert_array_equal(t_table.seed_pos_a, p_table.seed_pos_a)
            np.testing.assert_array_equal(t_table.seed_pos_b, p_table.seed_pos_b)
            np.testing.assert_array_equal(t_table.seed_same_strand,
                                          p_table.seed_same_strand)

    def test_alignment_tables_identical(self, runs):
        thread, process = runs
        t_table, p_table = thread.alignment_table(), process.alignment_table()
        for column in t_table:
            np.testing.assert_array_equal(t_table[column], p_table[column])

    def test_all_counters_identical(self, runs):
        thread, process = runs
        assert thread.counters == process.counters

    def test_trace_volumes_identical(self, runs):
        thread, process = runs
        assert thread.trace.total_bytes() == process.trace.total_bytes()
        for phase in thread.trace.phases():
            np.testing.assert_array_equal(
                thread.trace.phase_traffic(phase).volume,
                process.trace.phase_traffic(phase).volume,
            )

    def test_chunked_exchange_invariant_under_chunk_size(self, micro_dataset,
                                                         micro_config):
        from dataclasses import replace

        from repro.core.driver import run_dibella

        monolithic = run_dibella(micro_dataset.reads,
                                 config=replace(micro_config, exchange_chunk_mb=None),
                                 ranks_per_node=2)
        streamed = run_dibella(micro_dataset.reads,
                               config=replace(micro_config, exchange_chunk_mb=0.001),
                               ranks_per_node=2)
        assert streamed.overlap_pairs() == monolithic.overlap_pairs()
        assert streamed.counters["pairs_generated"] == monolithic.counters["pairs_generated"]
        assert (streamed.counters["overlap_exchange_chunks"]
                > monolithic.counters["overlap_exchange_chunks"])
        # Same total exchange volume, more collective calls (per-chunk trace).
        assert (streamed.trace.phase_traffic("overlap_exchange").total_bytes
                == monolithic.trace.phase_traffic("overlap_exchange").total_bytes)
        assert (streamed.trace.phase_traffic("overlap_exchange").collective_calls
                > monolithic.trace.phase_traffic("overlap_exchange").collective_calls)

    def test_read_cache_counters_present(self, runs):
        thread, _process = runs
        assert thread.counters["read_cache_misses"] > 0
        assert thread.counters["read_cache_hits"] > 0


@pytest.mark.slow
class TestPipelineParityMatrix:
    """{thread, process} x {pool on/off} x {double-buffering on/off} must all
    produce bit-identical scientific output."""

    @pytest.fixture(autouse=True)
    def _clean_pool_state(self):
        from repro.core.stages import reset_persistent_read_caches

        shutdown_rank_pools()
        reset_persistent_read_caches()
        yield
        shutdown_rank_pools()
        reset_persistent_read_caches()

    @pytest.fixture(scope="class")
    def reference(self, micro_dataset, micro_config):
        from repro.core.driver import run_dibella

        config = (micro_config.with_backend("thread")
                  .with_pool(False).with_double_buffer(False))
        return run_dibella(micro_dataset.reads, config=config,
                           n_nodes=1, ranks_per_node=3)

    @pytest.mark.parametrize("backend", ["thread", "process"])
    @pytest.mark.parametrize("pool", [False, True])
    @pytest.mark.parametrize("double_buffer", [False, True])
    def test_matrix_bit_identical(self, micro_dataset, micro_config, reference,
                                  backend, pool, double_buffer):
        from repro.core.driver import run_dibella

        config = (micro_config.with_backend(backend)
                  .with_pool(pool).with_double_buffer(double_buffer))
        result = run_dibella(micro_dataset.reads, config=config,
                             n_nodes=1, ranks_per_node=3)
        assert result.overlap_pairs() == reference.overlap_pairs()
        table, ref_table = result.alignment_table(), reference.alignment_table()
        for column in ref_table:
            np.testing.assert_array_equal(table[column], ref_table[column])
        for t_table, p_table in zip(result.overlap_tables(),
                                    reference.overlap_tables()):
            np.testing.assert_array_equal(t_table.rid_a, p_table.rid_a)
            np.testing.assert_array_equal(t_table.rid_b, p_table.rid_b)
            np.testing.assert_array_equal(t_table.seed_offsets, p_table.seed_offsets)
        assert (result.trace.phase_traffic("overlap_exchange").total_bytes
                == reference.trace.phase_traffic("overlap_exchange").total_bytes)

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_two_consecutive_pooled_runs(self, micro_dataset, micro_config, backend):
        """Second pooled run: bit-identical science, nonzero cross-run cache hits."""
        from repro.core.driver import run_dibella

        config = micro_config.with_backend(backend).with_pool(True)
        cold = run_dibella(micro_dataset.reads, config=config,
                           n_nodes=1, ranks_per_node=3)
        warm = run_dibella(micro_dataset.reads, config=config,
                           n_nodes=1, ranks_per_node=3)
        assert warm.overlap_pairs() == cold.overlap_pairs()
        cold_table, warm_table = cold.alignment_table(), warm.alignment_table()
        for column in cold_table:
            np.testing.assert_array_equal(warm_table[column], cold_table[column])
        # The cold run had nothing cached; the warm run re-used every read the
        # cold run fetched, so it skipped all remote fetches.
        assert cold.counters["read_cache_fetch_hits"] == 0
        assert warm.counters["read_cache_fetch_hits"] > 0
        assert warm.counters["remote_reads_fetched"] == 0
        assert cold.counters["remote_reads_fetched"] > 0

    def test_pooled_runs_do_not_serve_stale_reads(self, micro_dataset,
                                                  small_dataset, micro_config):
        """A reused rank must never hit a cache built from a different read set."""
        from repro.core.driver import run_dibella

        config = micro_config.with_backend("process").with_pool(True)
        run_dibella(micro_dataset.reads, config=config, n_nodes=1, ranks_per_node=3)
        other = run_dibella(small_dataset.reads, config=config,
                            n_nodes=1, ranks_per_node=3)
        fresh = run_dibella(small_dataset.reads,
                            config=config.with_pool(False),
                            n_nodes=1, ranks_per_node=3)
        # Different dataset -> different generation tag -> cold caches.
        assert other.counters["read_cache_fetch_hits"] == 0
        assert other.overlap_pairs() == fresh.overlap_pairs()
        other_table, fresh_table = other.alignment_table(), fresh.alignment_table()
        for column in fresh_table:
            np.testing.assert_array_equal(other_table[column], fresh_table[column])

    def test_pool_shutdown_after_pipeline_leaves_nothing(self, micro_dataset,
                                                         micro_config):
        import multiprocessing as mp

        from repro.core.driver import run_dibella

        config = micro_config.with_backend("process").with_pool(True)
        run_dibella(micro_dataset.reads, config=config, n_nodes=1, ranks_per_node=3)
        shutdown_rank_pools()
        deadline = time.monotonic() + 10.0
        while (any(p.name.startswith("spmd-pool-rank-") for p in mp.active_children())
               and time.monotonic() < deadline):
            time.sleep(0.05)
        assert not any(p.name.startswith("spmd-pool-rank-")
                       for p in mp.active_children())
        assert _shm_segments() == []

    def test_double_buffer_records_overlapped_time_when_multichunk(
            self, micro_dataset, micro_config):
        """With >1 chunk per rank, the db path must attribute generation time
        to the overlapped bucket and flag the chunks it overlapped."""
        from dataclasses import replace

        from repro.core.driver import run_dibella

        tiny_chunks = replace(micro_config, exchange_chunk_mb=0.001)
        db = run_dibella(micro_dataset.reads,
                         config=tiny_chunks.with_double_buffer(True),
                         n_nodes=1, ranks_per_node=2)
        sync = run_dibella(micro_dataset.reads,
                           config=tiny_chunks.with_double_buffer(False),
                           n_nodes=1, ranks_per_node=2)
        assert db.overlap_pairs() == sync.overlap_pairs()
        assert db.counters["overlap_chunks_overlapped"] > 0
        assert sync.counters["overlap_chunks_overlapped"] == 0
        assert db.counters["overlap_exchange_double_buffered"] > 0
        assert db.stage("overlap").wall_overlapped_seconds.sum() > 0.0
        assert sync.stage("overlap").wall_overlapped_seconds.sum() == 0.0
        # Counters other than the schedule flags (every stage records its
        # own pair under the unified superstep scheduler) are unaffected.
        keys = set(db.counters) - SCHEDULE_FLAG_COUNTERS
        for key in keys:
            assert db.counters[key] == sync.counters[key], key
