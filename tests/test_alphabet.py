"""Unit tests for repro.seq.alphabet."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.seq.alphabet import (
    BASE_TO_CODE,
    CODE_TO_BASE,
    DNA_ALPHABET,
    complement,
    is_valid_dna,
    reverse_complement,
    sanitize,
)

dna = st.text(alphabet="ACGT", min_size=0, max_size=200)


class TestCodes:
    def test_alphabet_order(self):
        assert DNA_ALPHABET == "ACGT"

    def test_base_to_code_roundtrip(self):
        for base, code in BASE_TO_CODE.items():
            assert CODE_TO_BASE[code] == base

    def test_complement_pairs(self):
        assert complement("A") == "T"
        assert complement("T") == "A"
        assert complement("C") == "G"
        assert complement("G") == "C"

    def test_complement_lowercase(self):
        assert complement("a") == "T"

    def test_complement_invalid(self):
        with pytest.raises(ValueError):
            complement("X")

    def test_complement_is_involution_on_codes(self):
        # With A=0..T=3 the complement of code c must be 3-c.
        for base, code in BASE_TO_CODE.items():
            assert BASE_TO_CODE[complement(base)] == 3 - code


class TestValidation:
    def test_valid(self):
        assert is_valid_dna("ACGTACGT")
        assert is_valid_dna("acgt")
        assert is_valid_dna("")

    def test_invalid(self):
        assert not is_valid_dna("ACGTN")
        assert not is_valid_dna("hello")

    def test_sanitize_replaces_ambiguous(self):
        assert sanitize("ACNNG") == "ACAAG"
        assert sanitize("ACNNG", replacement="T") == "ACTTG"

    def test_sanitize_uppercases(self):
        assert sanitize("acgt") == "ACGT"

    def test_sanitize_invalid_replacement(self):
        with pytest.raises(ValueError):
            sanitize("ACGT", replacement="N")


class TestReverseComplement:
    def test_simple(self):
        assert reverse_complement("ACGT") == "ACGT"
        assert reverse_complement("AAAA") == "TTTT"
        assert reverse_complement("ACCGT") == "ACGGT"

    def test_empty(self):
        assert reverse_complement("") == ""

    def test_preserves_n(self):
        assert reverse_complement("ANT") == "ANT"

    @given(dna)
    def test_involution(self, seq):
        assert reverse_complement(reverse_complement(seq)) == seq

    @given(dna)
    def test_length_preserved(self, seq):
        assert len(reverse_complement(seq)) == len(seq)

    @given(dna, dna)
    def test_concatenation_rule(self, a, b):
        # revcomp(a + b) == revcomp(b) + revcomp(a)
        assert reverse_complement(a + b) == reverse_complement(b) + reverse_complement(a)
