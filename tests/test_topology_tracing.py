"""Unit tests for repro.mpisim.topology and repro.mpisim.tracing."""

import numpy as np
import pytest

from repro.mpisim.topology import Topology
from repro.mpisim.tracing import CommTrace, PhaseTraffic


class TestTopology:
    def test_basic(self):
        topo = Topology(n_nodes=4, ranks_per_node=8)
        assert topo.n_ranks == 32
        assert topo.node_of(0) == 0
        assert topo.node_of(7) == 0
        assert topo.node_of(8) == 1
        assert topo.node_of(31) == 3

    def test_ranks_on_node(self):
        topo = Topology(n_nodes=2, ranks_per_node=3)
        assert list(topo.ranks_on_node(1)) == [3, 4, 5]

    def test_same_node(self):
        topo = Topology(n_nodes=2, ranks_per_node=2)
        assert topo.same_node(0, 1)
        assert not topo.same_node(1, 2)

    def test_internode_mask(self):
        topo = Topology(n_nodes=2, ranks_per_node=2)
        mask = topo.internode_mask()
        assert mask.shape == (4, 4)
        assert not mask[0, 1]
        assert mask[0, 2]

    def test_single_node_constructor(self):
        topo = Topology.single_node(6)
        assert topo.n_nodes == 1
        assert topo.n_ranks == 6

    def test_validation(self):
        with pytest.raises(ValueError):
            Topology(n_nodes=0, ranks_per_node=1)
        topo = Topology(n_nodes=1, ranks_per_node=2)
        with pytest.raises(ValueError):
            topo.node_of(5)
        with pytest.raises(ValueError):
            topo.ranks_on_node(3)


class TestPhaseTraffic:
    def test_accumulators(self):
        traffic = PhaseTraffic(n_ranks=3)
        traffic.volume[0, 1] = 100
        traffic.volume[1, 2] = 50
        assert traffic.total_bytes == 150
        np.testing.assert_array_equal(traffic.per_rank_sent(), [100, 50, 0])
        np.testing.assert_array_equal(traffic.per_rank_received(), [0, 100, 50])


class TestCommTrace:
    def test_record_and_summarise(self):
        trace = CommTrace(n_ranks=2)
        trace.set_phase(0, "alpha")
        trace.set_phase(1, "alpha")
        trace.record_send(0, [0, 10])
        trace.record_send(1, [20, 0])
        traffic = trace.phase_traffic("alpha")
        assert traffic.total_bytes == 30
        assert traffic.volume[0, 1] == 10
        assert traffic.volume[1, 0] == 20
        assert trace.total_bytes() == 30

    def test_phases_are_separate(self):
        trace = CommTrace(n_ranks=2)
        trace.set_phase(0, "a")
        trace.record_send(0, [0, 1])
        trace.set_phase(0, "b")
        trace.record_send(0, [0, 2])
        assert trace.phase_traffic("a").total_bytes == 1
        assert trace.phase_traffic("b").total_bytes == 2
        assert trace.phases() == ["a", "b"]

    def test_default_phase(self):
        trace = CommTrace(n_ranks=2)
        trace.record_send(0, [0, 5])
        assert trace.phase_traffic("default").total_bytes == 5

    def test_wrong_shape_rejected(self):
        trace = CommTrace(n_ranks=2)
        with pytest.raises(ValueError):
            trace.record_send(0, [1, 2, 3])

    def test_alltoallv_counter(self):
        trace = CommTrace(n_ranks=2)
        assert trace.record_alltoallv_call() == 1
        assert trace.record_alltoallv_call() == 2

    def test_collective_call_counter(self):
        trace = CommTrace(n_ranks=2)
        trace.record_collective_call("x")
        trace.record_collective_call("x")
        assert trace.phase_traffic("x").collective_calls == 2

    def test_summary(self):
        trace = CommTrace(n_ranks=2)
        trace.set_phase(0, "p")
        trace.record_send(0, [0, 7])
        summary = trace.summary()
        assert summary["p"]["total_bytes"] == 7.0
        assert summary["p"]["total_messages"] == 1.0
