"""Unit tests for repro.mpisim.topology and repro.mpisim.tracing."""

import numpy as np
import pytest

from repro.mpisim.topology import Topology
from repro.mpisim.tracing import CommTrace, PhaseTraffic


class TestTopology:
    def test_basic(self):
        topo = Topology(n_nodes=4, ranks_per_node=8)
        assert topo.n_ranks == 32
        assert topo.node_of(0) == 0
        assert topo.node_of(7) == 0
        assert topo.node_of(8) == 1
        assert topo.node_of(31) == 3

    def test_ranks_on_node(self):
        topo = Topology(n_nodes=2, ranks_per_node=3)
        assert list(topo.ranks_on_node(1)) == [3, 4, 5]

    def test_same_node(self):
        topo = Topology(n_nodes=2, ranks_per_node=2)
        assert topo.same_node(0, 1)
        assert not topo.same_node(1, 2)

    def test_internode_mask(self):
        topo = Topology(n_nodes=2, ranks_per_node=2)
        mask = topo.internode_mask()
        assert mask.shape == (4, 4)
        assert not mask[0, 1]
        assert mask[0, 2]

    def test_single_node_constructor(self):
        topo = Topology.single_node(6)
        assert topo.n_nodes == 1
        assert topo.n_ranks == 6

    def test_validation(self):
        with pytest.raises(ValueError):
            Topology(n_nodes=0, ranks_per_node=1)
        topo = Topology(n_nodes=1, ranks_per_node=2)
        with pytest.raises(ValueError):
            topo.node_of(5)
        with pytest.raises(ValueError):
            topo.ranks_on_node(3)


class TestPhaseTraffic:
    def test_accumulators(self):
        traffic = PhaseTraffic(n_ranks=3)
        traffic.volume[0, 1] = 100
        traffic.volume[1, 2] = 50
        assert traffic.total_bytes == 150
        np.testing.assert_array_equal(traffic.per_rank_sent(), [100, 50, 0])
        np.testing.assert_array_equal(traffic.per_rank_received(), [0, 100, 50])


class TestCommTrace:
    def test_record_and_summarise(self):
        trace = CommTrace(n_ranks=2)
        trace.set_phase(0, "alpha")
        trace.set_phase(1, "alpha")
        trace.record_send(0, [0, 10])
        trace.record_send(1, [20, 0])
        traffic = trace.phase_traffic("alpha")
        assert traffic.total_bytes == 30
        assert traffic.volume[0, 1] == 10
        assert traffic.volume[1, 0] == 20
        assert trace.total_bytes() == 30

    def test_phases_are_separate(self):
        trace = CommTrace(n_ranks=2)
        trace.set_phase(0, "a")
        trace.record_send(0, [0, 1])
        trace.set_phase(0, "b")
        trace.record_send(0, [0, 2])
        assert trace.phase_traffic("a").total_bytes == 1
        assert trace.phase_traffic("b").total_bytes == 2
        assert trace.phases() == ["a", "b"]

    def test_default_phase(self):
        trace = CommTrace(n_ranks=2)
        trace.record_send(0, [0, 5])
        assert trace.phase_traffic("default").total_bytes == 5

    def test_wrong_shape_rejected(self):
        trace = CommTrace(n_ranks=2)
        with pytest.raises(ValueError):
            trace.record_send(0, [1, 2, 3])

    def test_alltoallv_counter(self):
        trace = CommTrace(n_ranks=2)
        assert trace.record_alltoallv_call() == 1
        assert trace.record_alltoallv_call() == 2

    def test_collective_call_counter(self):
        trace = CommTrace(n_ranks=2)
        trace.record_collective_call("x")
        trace.record_collective_call("x")
        assert trace.phase_traffic("x").collective_calls == 2

    def test_summary(self):
        trace = CommTrace(n_ranks=2)
        trace.set_phase(0, "p")
        trace.record_send(0, [0, 7])
        summary = trace.summary()
        assert summary["p"]["total_bytes"] == 7.0
        assert summary["p"]["total_messages"] == 1.0


class TestRankGroups:
    def test_with_groups_contiguous_blocks(self):
        topo = Topology.single_node(4).with_groups(2)
        assert topo.groups == (0, 0, 1, 1)
        assert topo.n_groups == 2
        assert topo.group_of(3) == 1
        assert topo.ranks_in_group(0) == (0, 1)

    def test_with_groups_uneven_split_balanced(self):
        topo = Topology.single_node(5).with_groups(2)
        assert topo.groups == (0, 0, 0, 1, 1)

    def test_with_groups_bounds(self):
        topo = Topology.single_node(4)
        with pytest.raises(ValueError):
            topo.with_groups(0)
        with pytest.raises(ValueError):
            topo.with_groups(5)

    def test_group_map_validation(self):
        with pytest.raises(ValueError):
            Topology.single_node(4).with_group_map([0, 0, 2, 2])  # gap at 1
        with pytest.raises(ValueError):
            Topology.single_node(4).with_group_map([0, 0, 1])  # wrong length

    def test_leaders_are_lowest_ranks(self):
        topo = Topology.single_node(6).with_group_map([1, 0, 0, 1, 2, 2])
        assert topo.leader_of(0) == 1
        assert topo.leader_of(1) == 0
        assert topo.group_leaders == (1, 0, 4)

    def test_intergroup_mask(self):
        topo = Topology.single_node(4).with_groups(2)
        mask = topo.intergroup_mask()
        assert mask.sum() == 8
        assert not mask[0, 1] and mask[0, 2]

    def test_ungrouped_accessors_raise(self):
        topo = Topology.single_node(4)
        with pytest.raises(ValueError):
            topo.n_groups
        with pytest.raises(ValueError):
            topo.intergroup_mask()

    def test_pin_cores_validation(self):
        topo = Topology.single_node(2)
        assert topo.with_pin_cores([3, 5]).pin_cores == (3, 5)
        with pytest.raises(ValueError):
            topo.with_pin_cores([0])  # wrong length
        with pytest.raises(ValueError):
            topo.with_pin_cores([0, -1])


class TestPhysicalLayoutDetection:
    def _sysfs(self, tmp_path, packages):
        for core, package in packages.items():
            d = tmp_path / f"cpu{core}" / "topology"
            d.mkdir(parents=True)
            (d / "physical_package_id").write_text(f"{package}\n")
        return tmp_path

    def test_two_socket_host(self, tmp_path):
        from repro.mpisim.topology import detect_physical_layout

        sysfs = self._sysfs(tmp_path, {0: 0, 1: 1, 2: 0, 3: 1})
        layout = detect_physical_layout(affinity=[0, 1, 2, 3], sysfs=sysfs)
        assert layout.n_cores == 4
        assert layout.n_sockets == 2
        # Socket-major order: contiguous slices stay socket-local.
        assert layout.cores == (0, 2, 1, 3)
        assert layout.packages == (0, 0, 1, 1)

    def test_restricted_affinity_mask(self, tmp_path):
        from repro.mpisim.topology import detect_physical_layout

        sysfs = self._sysfs(tmp_path, {0: 0, 1: 1, 2: 0, 3: 1})
        layout = detect_physical_layout(affinity=[1, 3], sysfs=sysfs)
        assert layout.cores == (1, 3)
        assert layout.n_sockets == 1

    def test_missing_sysfs_degrades_to_one_socket(self, tmp_path):
        from repro.mpisim.topology import detect_physical_layout

        layout = detect_physical_layout(affinity=[0, 1],
                                        sysfs=tmp_path / "absent")
        assert layout.n_cores == 2
        assert layout.n_sockets == 1

    def test_empty_affinity_degrades_to_core0(self, tmp_path):
        from repro.mpisim.topology import detect_physical_layout

        layout = detect_physical_layout(affinity=[], sysfs=tmp_path / "absent")
        assert layout.cores == (0,)
        assert layout.n_sockets == 1

    def test_host_detection_never_raises(self):
        from repro.mpisim.topology import detect_physical_layout

        layout = detect_physical_layout()
        assert layout.n_cores >= 1
        assert layout.n_sockets >= 1


class TestResolveRankGroups:
    def _layout(self, packages):
        from repro.mpisim.topology import PhysicalLayout

        return PhysicalLayout(cores=tuple(range(len(packages))),
                              packages=tuple(packages))

    def test_explicit_request_wins(self):
        from repro.mpisim.topology import resolve_rank_groups

        assert resolve_rank_groups(3, 8, layout=self._layout([0, 0])) == 3

    def test_explicit_request_clamped(self):
        from repro.mpisim.topology import resolve_rank_groups

        assert resolve_rank_groups(16, 4, layout=self._layout([0, 0])) == 4
        assert resolve_rank_groups(0, 4, layout=self._layout([0, 0])) == 1

    def test_auto_uses_socket_count(self):
        from repro.mpisim.topology import resolve_rank_groups

        assert resolve_rank_groups(None, 8,
                                   layout=self._layout([0, 0, 1, 1])) == 2

    def test_auto_single_core_host(self):
        from repro.mpisim.topology import resolve_rank_groups

        assert resolve_rank_groups(None, 8, layout=self._layout([0])) == 1

    def test_auto_clamped_to_ranks(self):
        from repro.mpisim.topology import resolve_rank_groups

        assert resolve_rank_groups(None, 2,
                                   layout=self._layout([0, 1, 2, 3])) == 2


class TestAssignPinCores:
    def _layout(self, cores, packages=None):
        from repro.mpisim.topology import PhysicalLayout

        return PhysicalLayout(cores=tuple(cores),
                              packages=tuple(packages or [0] * len(cores)))

    def test_grouped_ranks_get_group_local_slices(self):
        from repro.mpisim.topology import assign_pin_cores

        topo = Topology.single_node(4).with_groups(2)
        layout = self._layout([0, 2, 1, 3], packages=[0, 0, 1, 1])
        assert assign_pin_cores(topo, layout=layout) == (0, 2, 1, 3)

    def test_oversubscription_wraps_within_group_slice(self):
        from repro.mpisim.topology import assign_pin_cores

        topo = Topology.single_node(8).with_groups(2)
        layout = self._layout([10, 11], packages=[0, 1])
        # Group 0 wraps on core 10, group 1 on core 11 - no spill across.
        assert assign_pin_cores(topo, layout=layout) == \
            (10, 10, 10, 10, 11, 11, 11, 11)

    def test_ungrouped_round_robin(self):
        from repro.mpisim.topology import assign_pin_cores

        topo = Topology.single_node(5)
        layout = self._layout([4, 5, 6])
        assert assign_pin_cores(topo, layout=layout) == (4, 5, 6, 4, 5)

    def test_single_core_host(self):
        from repro.mpisim.topology import assign_pin_cores

        topo = Topology.single_node(3).with_groups(1)
        layout = self._layout([0])
        assert assign_pin_cores(topo, layout=layout) == (0, 0, 0)
