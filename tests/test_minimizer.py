"""Minimizer sketch mode: extractor properties, pipeline threading, parity.

Three layers of pinning:

* **extractor properties** (hypothesis) — the invariants that make the
  sketch a sound seed set: every w-window of a read contains a selected
  position (coverage), the sketch is a subset of the full canonical k-mer
  stream, it agrees with :func:`extract_kmers_with_strand` on
  canonicalization, batch and scalar extraction are equivalent, and w=1
  degenerates to the full stream;
* **pipeline threading** — ``seed_mode="minimizer"`` actually shrinks the
  stage 1-3 exchange volume and the retained table, reports the density
  counters, and still finds overlaps; config/env knob validation;
* **parity** — per seed mode the run is bit-identical across
  {thread, process} backends, and the serve phase (build + query under
  minimizer mode) reproduces the one-shot run's query-vs-index alignments
  and builds content-identical resident indexes on both backends.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import DibellaPipeline, PipelineConfig
from repro.core.driver import run_dibella
from repro.core.stages import reset_persistent_read_caches, reset_resident_indexes
from repro.kmers.minimizer import (
    expected_density,
    minimizer_mask,
    sketch_hash,
    sketch_kmers_batch,
    sketch_kmers_with_strand,
)
from repro.mpisim.backend import shutdown_rank_pools
from repro.mpisim.topology import Topology
from repro.seq.kmer import (
    KmerSpec,
    extract_kmers_batch,
    extract_kmers_with_strand,
)
from repro.seq.records import ReadSet

K = 9
SPEC = KmerSpec(k=K)

dna = st.text(alphabet="ACGT", min_size=0, max_size=120)
windows = st.integers(min_value=1, max_value=15)


def _cleanup():
    shutdown_rank_pools()
    reset_persistent_read_caches()
    reset_resident_indexes()


class TestMinimizerMask:
    """Invariants of the raw mask over (hashes, read_index) streams."""

    @given(st.lists(st.lists(st.integers(min_value=0, max_value=2**63 - 1),
                             min_size=0, max_size=40),
                    min_size=0, max_size=6),
           windows)
    @settings(max_examples=80, deadline=None)
    def test_coverage_and_per_read_selection(self, reads, window):
        hashes = np.array([h for read in reads for h in read], dtype=np.uint64)
        read_index = np.array(
            [i for i, read in enumerate(reads) for _ in read], dtype=np.int64)
        mask = minimizer_mask(hashes, read_index, window)
        assert mask.shape == hashes.shape
        # Coverage: every intra-read window of `window` consecutive k-mers
        # contains a selected position.
        n = hashes.size
        for start in range(max(0, n - window + 1)):
            if read_index[start] == read_index[start + window - 1]:
                assert mask[start:start + window].any()
        # Every read with at least one k-mer keeps at least one.
        for i, read in enumerate(reads):
            if read:
                assert mask[read_index == i].any()
        if window == 1:
            assert mask.all()

    @given(st.lists(st.integers(min_value=0, max_value=2**63 - 1),
                    min_size=0, max_size=60), windows)
    @settings(max_examples=60, deadline=None)
    def test_selected_are_window_minima(self, hashes, window):
        h = np.asarray(hashes, dtype=np.uint64)
        reads = np.zeros(h.size, dtype=np.int64)
        mask = minimizer_mask(h, reads, window)
        if 0 < h.size < window:
            # Shorter than one window: exactly the read's leftmost global
            # minimum is kept.
            expected = np.zeros(h.size, dtype=bool)
            expected[int(np.argmin(h))] = True
            np.testing.assert_array_equal(mask, expected)
            return
        for pos in np.flatnonzero(mask):
            # A selected k-mer is the leftmost minimum of some full window
            # containing it (single-read stream: every window is intra-read).
            starts = range(max(0, pos - window + 1),
                           min(pos, h.size - window) + 1)
            assert any(start + int(np.argmin(h[start:start + window])) == pos
                       for start in starts), (pos, window, hashes)

    def test_validation(self):
        with pytest.raises(ValueError, match="window"):
            minimizer_mask(np.zeros(3, dtype=np.uint64),
                           np.zeros(3, dtype=np.int64), 0)
        with pytest.raises(ValueError, match="shape"):
            minimizer_mask(np.zeros(3, dtype=np.uint64),
                           np.zeros(2, dtype=np.int64), 2)
        with pytest.raises(ValueError):
            expected_density(0)
        assert expected_density(1) == 1.0
        assert expected_density(11) == pytest.approx(2.0 / 12.0)


class TestSketchExtraction:
    """The sketch against the full extraction of repro.seq.kmer."""

    @given(st.lists(dna, min_size=0, max_size=6), windows)
    @settings(max_examples=60, deadline=None)
    def test_subset_of_full_canonical_stream(self, seqs, window):
        full_codes, full_ri, full_pos, full_strand = extract_kmers_batch(
            seqs, SPEC, with_strand=True)
        codes, ri, pos, strand = sketch_kmers_batch(seqs, SPEC, window,
                                                    with_strand=True)
        full = {(int(r), int(p)): (int(c), bool(s))
                for r, p, c, s in zip(full_ri, full_pos, full_codes, full_strand)}
        for r, p, c, s in zip(ri, pos, codes, strand):
            # Same canonical code and strand flag as the full extraction at
            # the same (read, position) — the sketch only drops entries.
            assert full[(int(r), int(p))] == (int(c), bool(s))
        if window == 1:
            np.testing.assert_array_equal(codes, full_codes)
            np.testing.assert_array_equal(ri, full_ri)
            np.testing.assert_array_equal(pos, full_pos)
            np.testing.assert_array_equal(strand, full_strand)

    @given(dna, windows)
    @settings(max_examples=60, deadline=None)
    def test_scalar_agrees_with_extract_kmers_with_strand(self, seq, window):
        codes, pos, strand = sketch_kmers_with_strand(seq, SPEC, window)
        full_codes, full_pos, full_strand = extract_kmers_with_strand(seq, SPEC)
        keep = np.isin(full_pos, pos)
        np.testing.assert_array_equal(codes, full_codes[keep])
        np.testing.assert_array_equal(pos, full_pos[keep])
        np.testing.assert_array_equal(strand, full_strand[keep])
        # Coverage on the real extraction: every full window selects.
        n = full_codes.size
        if n:
            selected = np.zeros(n, dtype=bool)
            selected[np.searchsorted(full_pos, pos)] = True
            for start in range(max(0, n - window + 1)):
                assert selected[start:start + window].any()

    @given(st.lists(dna, min_size=0, max_size=6), windows)
    @settings(max_examples=40, deadline=None)
    def test_batch_matches_scalar(self, seqs, window):
        codes, ri, pos, strand = sketch_kmers_batch(seqs, SPEC, window,
                                                    with_strand=True)
        for i, seq in enumerate(seqs):
            s_codes, s_pos, s_strand = sketch_kmers_with_strand(seq, SPEC, window)
            sel = ri == i
            np.testing.assert_array_equal(codes[sel], s_codes)
            np.testing.assert_array_equal(pos[sel], s_pos)
            np.testing.assert_array_equal(strand[sel], s_strand)

    def test_strand_invariance(self):
        # A read and its reverse complement share the same canonical codes,
        # so content-based selection picks the same k-mers on both strands.
        rng = np.random.default_rng(11)
        seq = "".join("ACGT"[i] for i in rng.integers(0, 4, size=200))
        comp = {"A": "T", "C": "G", "G": "C", "T": "A"}
        rc = "".join(comp[b] for b in reversed(seq))
        fwd_codes, _, _ = sketch_kmers_with_strand(seq, SPEC, 7)
        rev_codes, _, _ = sketch_kmers_with_strand(rc, SPEC, 7)
        assert set(fwd_codes.tolist()) == set(rev_codes.tolist())

    def test_density_tracks_expected(self):
        rng = np.random.default_rng(7)
        seqs = ["".join("ACGT"[i] for i in rng.integers(0, 4, size=1500))
                for _ in range(8)]
        full, _, _, _ = extract_kmers_batch(seqs, SPEC, with_strand=True)
        for window in (5, 11, 19):
            codes, _, _, _ = sketch_kmers_batch(seqs, SPEC, window,
                                                with_strand=True)
            density = codes.size / full.size
            assert density == pytest.approx(expected_density(window), rel=0.25)

    def test_sketch_hash_is_not_the_owner_hash(self):
        from repro.kmers.hashing import mix64
        codes = np.arange(1, 1000, dtype=np.uint64)
        assert not np.array_equal(sketch_hash(codes), mix64(codes))


class TestConfigKnobs:
    def test_defaults_and_validation(self, monkeypatch):
        monkeypatch.delenv("DIBELLA_SEED_MODE", raising=False)
        monkeypatch.delenv("DIBELLA_MINIMIZER_WINDOW", raising=False)
        config = PipelineConfig()
        assert config.seed_mode == "reliable"
        assert config.minimizer_window == 11
        assert config.sketch_window == 1  # reliable mode keeps everything
        assert config.with_seed_mode("minimizer", 7).sketch_window == 7
        with pytest.raises(ValueError, match="seed mode"):
            PipelineConfig(seed_mode="syncmer")
        with pytest.raises(ValueError, match="minimizer_window"):
            PipelineConfig(minimizer_window=0)

    def test_env_knobs(self, monkeypatch):
        monkeypatch.setenv("DIBELLA_SEED_MODE", "minimizer")
        monkeypatch.setenv("DIBELLA_MINIMIZER_WINDOW", "5")
        config = PipelineConfig()
        assert config.seed_mode == "minimizer"
        assert config.minimizer_window == 5
        assert config.sketch_window == 5

    def test_with_seed_mode_keeps_window(self):
        config = PipelineConfig(minimizer_window=9)
        assert config.with_seed_mode("minimizer").minimizer_window == 9


class TestPipelineSketching:
    """Minimizer mode through the full pipeline (thread backend, fast)."""

    def test_volume_drops_and_overlaps_survive(self, micro_dataset, micro_config):
        # Pin both modes explicitly: the suite may run with
        # DIBELLA_SEED_MODE=minimizer exported (the CI leg).
        reliable = run_dibella(micro_dataset.reads,
                               config=micro_config.with_seed_mode("reliable"),
                               ranks_per_node=3)
        sketched = run_dibella(
            micro_dataset.reads,
            config=micro_config.with_seed_mode("minimizer", 5),
            ranks_per_node=3)

        rc, sc = reliable.counters, sketched.counters
        # Reliable mode: nothing dropped, density exactly 1e6 ppm.
        assert rc["kmers_extracted_total"] == rc["kmers_after_sketch"] > 0
        assert rc["sketch_density_ppm"] == 1_000_000
        # Minimizer mode: the sketch is a strict subset with the expected
        # density, and every stage-1-3 volume counter shrinks with it.
        assert 0 < sc["kmers_after_sketch"] < sc["kmers_extracted_total"]
        assert sc["sketch_density_ppm"] < 600_000
        for counter in ("bloom_payload_bytes", "hashtable_payload_bytes",
                        "overlap_payload_bytes", "retained_table_peak_bytes"):
            assert 0 < sc[counter] < rc[counter], counter
        # The sketched run still recovers the bulk of the baseline overlaps.
        assert len(sketched.overlap_pairs() & reliable.overlap_pairs()) >= \
            0.8 * len(reliable.overlap_pairs())

    def test_window_one_matches_reliable(self, micro_dataset, micro_config):
        """w=1 selects every k-mer: identical science to reliable mode."""
        reliable = run_dibella(micro_dataset.reads,
                               config=micro_config.with_seed_mode("reliable"),
                               ranks_per_node=2)
        degenerate = run_dibella(
            micro_dataset.reads,
            config=micro_config.with_seed_mode("minimizer", 1),
            ranks_per_node=2)
        assert degenerate.overlap_pairs() == reliable.overlap_pairs()
        t, d = reliable.alignment_table(), degenerate.alignment_table()
        for column in t:
            np.testing.assert_array_equal(t[column], d[column])
        assert degenerate.counters["sketch_density_ppm"] == 1_000_000

    @pytest.mark.slow
    @pytest.mark.parametrize("seed_mode,window", [("reliable", 11),
                                                  ("minimizer", 5)])
    def test_backend_parity_per_mode(self, micro_dataset, micro_config,
                                     seed_mode, window):
        """{thread, process} x {reliable, minimizer}: bit-identical per mode."""
        config = micro_config.with_seed_mode(seed_mode, window)
        try:
            thread = run_dibella(micro_dataset.reads,
                                 config=config.with_backend("thread"),
                                 ranks_per_node=3)
            process = run_dibella(micro_dataset.reads,
                                  config=config.with_backend("process"),
                                  ranks_per_node=3)
            assert thread.counters == process.counters
            assert thread.overlap_pairs() == process.overlap_pairs()
            t_table, p_table = thread.alignment_table(), process.alignment_table()
            for column in t_table:
                np.testing.assert_array_equal(t_table[column], p_table[column])
        finally:
            _cleanup()


class TestServeSketching:
    """Build/serve consistency under minimizer mode."""

    @staticmethod
    def _canonical(table: dict[str, np.ndarray]) -> np.ndarray:
        matrix = np.stack([table["rid_a"], table["rid_b"], table["score"],
                           table["span_a"], table["span_b"]], axis=1)
        order = np.lexsort(tuple(matrix[:, col] for col in range(4, -1, -1)))
        return matrix[order]

    def test_served_batch_matches_one_shot_minimizer(self, micro_dataset,
                                                     micro_config):
        config = micro_config.with_seed_mode("minimizer", 5)
        readset = micro_dataset.reads
        n_index = (3 * len(readset)) // 4
        reads = list(readset)
        topology = Topology.single_node(4)
        try:
            oneshot = DibellaPipeline(config=config, topology=topology).run(readset)
            table = oneshot.alignment_table()
            cross = (table["rid_a"] < n_index) & (table["rid_b"] >= n_index)
            expected = self._canonical({k: v[cross] for k, v in table.items()})

            pipeline = DibellaPipeline(config=config, topology=topology)
            build = pipeline.build_index(ReadSet(reads[:n_index]))
            served = pipeline.run_query_batch(ReadSet(reads[n_index:]))
            got = self._canonical(served.alignment_table())

            np.testing.assert_array_equal(got, expected)
            # Both phases report the sketch: the build sketches the index
            # reads, the query batch sketches with the same (k, w).
            assert build.counters["sketch_density_ppm"] < 600_000
            assert served.counters["sketch_density_ppm"] < 600_000
        finally:
            _cleanup()

    def test_index_tag_separates_seed_modes(self, micro_dataset, micro_config):
        """A reliable-built index must never serve minimizer queries."""
        topology = Topology.single_node(2)
        try:
            reliable = DibellaPipeline(config=micro_config, topology=topology)
            reliable.build_index(micro_dataset.reads)
            sketched = DibellaPipeline(
                config=micro_config.with_seed_mode("minimizer", 5),
                topology=topology)
            sketched.build_index(micro_dataset.reads)
            assert reliable._index_tag != sketched._index_tag
            assert "minw5" in sketched._index_tag
            windowed = DibellaPipeline(
                config=micro_config.with_seed_mode("minimizer", 7),
                topology=topology)
            windowed.build_index(micro_dataset.reads)
            assert windowed._index_tag != sketched._index_tag
        finally:
            _cleanup()

    @pytest.mark.slow
    def test_index_digest_matches_across_backends_minimizer(self, micro_dataset,
                                                            micro_config):
        """Minimizer-mode build_index: content-identical on both backends."""
        config = micro_config.with_seed_mode("minimizer", 5)
        digests = {}
        retained = {}
        try:
            for backend in ("thread", "process"):
                pipeline = DibellaPipeline(config=config.with_backend(backend),
                                           topology=Topology.single_node(2))
                result = pipeline.build_index(micro_dataset.reads)
                digests[backend] = result.counters["index_digest"]
                retained[backend] = result.counters["index_retained_kmers"]
                assert result.counters["sketch_density_ppm"] < 600_000
        finally:
            _cleanup()
        assert digests["thread"] == digests["process"]
        assert retained["thread"] == retained["process"] > 0

    def test_sketched_index_is_smaller(self, micro_dataset, micro_config):
        try:
            full = DibellaPipeline(config=micro_config.with_seed_mode("reliable"),
                                   topology=Topology.single_node(2))
            full_build = full.build_index(micro_dataset.reads)
            sketched = DibellaPipeline(
                config=micro_config.with_seed_mode("minimizer", 5),
                topology=Topology.single_node(2))
            sketch_build = sketched.build_index(micro_dataset.reads)
            assert 0 < sketch_build.counters["index_nbytes"] < \
                full_build.counters["index_nbytes"]
            assert 0 < sketch_build.counters["index_occurrences"] < \
                full_build.counters["index_occurrences"]
        finally:
            _cleanup()
