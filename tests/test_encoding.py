"""Unit tests for repro.seq.encoding."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.seq.encoding import (
    BASES_PER_WORD,
    decode_sequence,
    encode_sequence,
    pack_2bit,
    packed_nbytes,
    unpack_2bit,
)

dna = st.text(alphabet="ACGT", min_size=0, max_size=300)


class TestEncodeDecode:
    def test_known_codes(self):
        np.testing.assert_array_equal(encode_sequence("ACGT"), [0, 1, 2, 3])

    def test_empty(self):
        assert encode_sequence("").size == 0
        assert decode_sequence(np.empty(0, dtype=np.uint8)) == ""

    def test_lowercase_accepted(self):
        np.testing.assert_array_equal(encode_sequence("acgt"), [0, 1, 2, 3])

    def test_invalid_raises(self):
        with pytest.raises(ValueError, match="invalid DNA"):
            encode_sequence("ACGN")

    def test_decode_invalid_code(self):
        with pytest.raises(ValueError):
            decode_sequence(np.array([0, 5], dtype=np.uint8))

    @given(dna)
    def test_roundtrip(self, seq):
        assert decode_sequence(encode_sequence(seq)) == seq


class TestPacking:
    def test_pack_small(self):
        codes = encode_sequence("ACGT")
        words, n = pack_2bit(codes)
        assert n == 4
        assert words.dtype == np.uint64
        np.testing.assert_array_equal(unpack_2bit(words, n), codes)

    def test_pack_empty(self):
        words, n = pack_2bit(np.empty(0, dtype=np.uint8))
        assert n == 0
        assert unpack_2bit(words, 0).size == 0

    def test_exact_word_boundary(self):
        codes = np.tile(np.array([0, 1, 2, 3], dtype=np.uint8), BASES_PER_WORD // 4)
        words, n = pack_2bit(codes)
        assert words.size == 1
        np.testing.assert_array_equal(unpack_2bit(words, n), codes)

    def test_packed_nbytes(self):
        assert packed_nbytes(0) == 0
        assert packed_nbytes(1) == 8
        assert packed_nbytes(32) == 8
        assert packed_nbytes(33) == 16

    @given(dna)
    def test_pack_roundtrip(self, seq):
        codes = encode_sequence(seq)
        words, n = pack_2bit(codes)
        np.testing.assert_array_equal(unpack_2bit(words, n), codes)

    @given(dna)
    def test_packing_is_compact(self, seq):
        codes = encode_sequence(seq)
        words, _ = pack_2bit(codes)
        assert words.nbytes == packed_nbytes(len(seq))
