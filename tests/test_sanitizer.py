"""Runtime sanitizer tests (``spmd_run(..., sanitize=True)`` / DIBELLA_SANITIZE).

Three layers:

* negative — inject each bug class the sanitizer exists for (rank-divergent
  collective, dtype-mismatched exchange, split-phase lifecycle violations)
  and pin that both backends fail loudly with the descriptive error instead
  of deadlocking or silently corrupting;
* watchdog — a rank that never joins a collective turns into a prompt
  :class:`CollectiveTimeoutError` carrying the wedged rank's recent
  collective trace (instead of a ten-minute stall);
* happy path — sanitized runs are bit-identical to unsanitized ones, at the
  toy-program level and through the full pipeline (``config.sanitize``
  plumbing included), and a failed sanitized run leaves no shared-memory
  segments or orphaned rank processes behind.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time

import numpy as np
import pytest

from repro.core.driver import run_dibella
from repro.mpisim.backend import shutdown_rank_pools
from repro.mpisim.communicator import ExchangeHandle
from repro.mpisim.errors import (
    CollectiveMismatchError,
    CollectiveTimeoutError,
    RankFailedError,
    SegmentStateError,
)
from repro.mpisim.runtime import spmd_run
from repro.mpisim.tracing import CommTrace

BACKENDS = ("thread", "process")


def _shm_segments() -> list[str]:
    """Names of live POSIX shared-memory segments (empty off-POSIX)."""
    try:
        return [f for f in os.listdir("/dev/shm") if f.startswith("psm_")]
    except FileNotFoundError:  # pragma: no cover - non-POSIX-shm platform
        return []


# ---------------------------------------------------------------------------
# Rank programs (module-level so the process backend can run them)
# ---------------------------------------------------------------------------

def _happy_program(comm):
    """One program touching every sanitized surface with congruent payloads."""
    comm.barrier()
    total = comm.allreduce(comm.rank + 1)
    send = [np.arange(comm.rank + d, dtype=np.int64) for d in range(comm.size)]
    sync = comm.alltoallv(send, label="sync")
    handle = comm.alltoallv_start(send, label="split")
    split = comm.alltoallv_finish(handle)
    label = comm.bcast("tag" if comm.rank == 0 else None, root=0)
    return (total, label,
            sum(int(block.sum()) for block in sync),
            sum(int(block.sum()) for block in split))


def _divergent_program(comm):
    if comm.rank == 0:
        comm.allreduce(1)
    else:
        comm.barrier()


def _dtype_mismatch_program(comm):
    dtype = np.float64 if comm.rank == 1 else np.int64
    send = [np.zeros(2, dtype=dtype) for _ in range(comm.size)]
    return [block.dtype.str for block in comm.alltoallv(send, label="pairs")]


def _forged_handle(backend: str) -> ExchangeHandle:
    """A handle for split-phase superstep 5, which no rank ever started."""
    token = 5 if backend == "thread" else (5, b"")
    return ExchangeHandle(op_name="alltoallv[ok]", token=token, label="ok")


def _consume_before_publish_program(comm, backend):
    send = [np.zeros(1, dtype=np.int64)] * comm.size
    handle = comm.alltoallv_start(send, label="ok")
    comm.alltoallv_finish(handle)
    # Every rank must be past the legitimate read before any rank aborts,
    # or abort-time segment reclamation races a slower rank's valid fetch.
    comm.barrier()
    comm.alltoallv_finish(_forged_handle(backend))


def _double_finish_program(comm):
    send = [np.zeros(1, dtype=np.int64)] * comm.size
    handle = comm.alltoallv_start(send, label="ok")
    comm.alltoallv_finish(handle)
    comm.barrier()
    comm.alltoallv_finish(handle)


def _watchdog_program(comm):
    comm.allreduce(comm.rank)  # lands in the collective trace dump
    if comm.rank != 0:
        comm.barrier()  # rank 0 never joins: the watchdog must fire
    return comm.rank


# ---------------------------------------------------------------------------
# Negative: injected bugs fail loudly on both backends
# ---------------------------------------------------------------------------

class TestInjectedBugs:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_rank_divergent_collective_named(self, backend):
        with pytest.raises(RankFailedError) as err:
            spmd_run(3, _divergent_program, backend=backend, sanitize=True)
        cause = err.value.__cause__
        assert isinstance(cause, CollectiveMismatchError)
        assert "congruence" in str(cause)
        # The error names who called what, by rank.
        assert "allreduce" in str(cause) and "barrier" in str(cause)
        assert "rank(s) [0]" in str(cause)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_dtype_mismatched_exchange_named(self, backend):
        with pytest.raises(RankFailedError) as err:
            spmd_run(3, _dtype_mismatch_program, backend=backend, sanitize=True)
        cause = err.value.__cause__
        assert isinstance(cause, CollectiveMismatchError)
        assert "<f8" in str(cause) and "<i8" in str(cause)
        assert "rank(s) [1]" in str(cause)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_dtype_mismatch_is_silent_without_sanitize(self, backend):
        # The bug class SL-sanitize exists for: without the sanitizer the
        # mismatched exchange "succeeds" and the corruption flows downstream.
        results = spmd_run(3, _dtype_mismatch_program, backend=backend,
                           sanitize=False)
        assert any("<f8" in dtype for dtypes in results for dtype in dtypes)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_consume_before_publish_guarded(self, backend):
        with pytest.raises(RankFailedError) as err:
            spmd_run(3, _consume_before_publish_program, backend,
                     backend=backend, sanitize=True)
        cause = err.value.__cause__
        assert isinstance(cause, SegmentStateError)
        assert "never started" in str(cause)
        assert "read-before-publish" in str(cause)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_double_finish_guarded(self, backend):
        with pytest.raises(RankFailedError) as err:
            spmd_run(3, _double_finish_program, backend=backend, sanitize=True)
        cause = err.value.__cause__
        assert isinstance(cause, SegmentStateError)
        assert "twice" in str(cause)


# ---------------------------------------------------------------------------
# Watchdog: hangs become prompt, traced errors
# ---------------------------------------------------------------------------

class TestWatchdog:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_missing_rank_times_out_with_trace(self, backend, monkeypatch):
        monkeypatch.setenv("DIBELLA_SANITIZE_TIMEOUT", "1")
        start = time.monotonic()
        with pytest.raises(RankFailedError) as err:
            spmd_run(2, _watchdog_program, backend=backend, sanitize=True)
        elapsed = time.monotonic() - start
        cause = err.value.__cause__
        assert isinstance(cause, CollectiveTimeoutError)
        assert "watchdog" in str(cause)
        # The dump carries the wedged rank's recent collectives.
        assert "allreduce" in str(cause)
        assert elapsed < 30.0  # prompt, not the 600 s engine default

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_watchdog_silent_on_healthy_run(self, backend, monkeypatch):
        # A tight watchdog must not fire when every rank participates.
        monkeypatch.setenv("DIBELLA_SANITIZE_TIMEOUT", "30")
        results = spmd_run(3, _happy_program, backend=backend, sanitize=True)
        assert len(results) == 3


# ---------------------------------------------------------------------------
# Happy path: sanitize is observation-only
# ---------------------------------------------------------------------------

class TestBitIdentity:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_program_results_and_trace_identical(self, backend):
        trace_off = CommTrace(3)
        trace_on = CommTrace(3)
        plain = spmd_run(3, _happy_program, backend=backend,
                         trace=trace_off, sanitize=False)
        sanitized = spmd_run(3, _happy_program, backend=backend,
                             trace=trace_on, sanitize=True)
        assert plain == sanitized
        # The congruence digests ride outside trace accounting: identical
        # volumes, op names and message counts either way.
        assert trace_off.summary() == trace_on.summary()

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_pipeline_bit_identical_under_sanitize(self, micro_dataset,
                                                   micro_config, backend):
        # Pooling off: under DIBELLA_POOL=1 the second run would hit the
        # first run's warm per-rank read caches, skewing read_cache_* /
        # remote_reads_fetched for reasons unrelated to the sanitizer.
        config = micro_config.with_backend(backend).with_pool(False)
        plain = run_dibella(micro_dataset.reads, config=config,
                            n_nodes=1, ranks_per_node=2)
        sanitized = run_dibella(micro_dataset.reads,
                                config=config.with_sanitize(True),
                                n_nodes=1, ranks_per_node=2)
        assert sanitized.counters == plain.counters
        assert sanitized.n_alignments == plain.n_alignments
        assert sanitized.n_overlap_pairs == plain.n_overlap_pairs


# ---------------------------------------------------------------------------
# Abort hygiene: a sanitizer failure reclaims everything (PR 3 extension)
# ---------------------------------------------------------------------------

class TestAbortCleanup:
    @pytest.fixture(autouse=True)
    def _clean_pools(self):
        shutdown_rank_pools()
        yield
        shutdown_rank_pools()

    def test_failure_leaves_no_segments_or_workers(self):
        with pytest.raises(RankFailedError):
            spmd_run(3, _consume_before_publish_program, "process",
                     backend="process", sanitize=True)
        deadline = time.monotonic() + 10.0
        while (any(p.name.startswith("spmd-") for p in mp.active_children())
               and time.monotonic() < deadline):
            time.sleep(0.05)
        assert not any(p.name.startswith("spmd-") for p in mp.active_children())
        assert _shm_segments() == []

    def test_pooled_failure_evicts_pool_and_cleans_up(self):
        with pytest.raises(RankFailedError):
            spmd_run(3, _divergent_program, backend="process", pool=True,
                     sanitize=True)
        deadline = time.monotonic() + 10.0
        while (any(p.name.startswith("spmd-pool-rank-")
                   for p in mp.active_children())
               and time.monotonic() < deadline):
            time.sleep(0.05)
        assert not any(p.name.startswith("spmd-pool-rank-")
                       for p in mp.active_children())
        assert _shm_segments() == []
        # The pool recovers: a fresh sanitized run on new workers succeeds.
        results = spmd_run(3, _happy_program, backend="process", pool=True,
                           sanitize=True)
        assert len(results) == 3
