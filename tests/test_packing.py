"""Tests for the 2-bit packed wire codec (repro.seq.packing).

Three layers:

* property tests for the primitive codec (pack/unpack round-trips over
  arbitrary lengths, including odd lengths and empty input, and the
  N-handling contract: non-ACGT bases are rejected unless sanitised per
  :mod:`repro.seq.alphabet`);
* the :class:`PackedReadBlock` wire format — block round-trips, the typed
  serialization tag, byte accounting, and the lazy ``ReadCache`` insertion;
* end-to-end parity — the pipeline's scientific output must be bit-identical
  across {packed, ASCII} wire formats × {thread, process} backends, with the
  packed payload provably ~4x smaller (slow tier).
"""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.align.read_cache import ReadCache
from repro.mpisim.collectives import payload_nbytes
from repro.mpisim.serialization import decode_payload, encode_payload
from repro.seq.alphabet import sanitize
from repro.seq.encoding import decode_sequence, encode_sequence
from repro.seq.packing import (
    PackedReadBlock,
    pack_codes,
    pack_read_block,
    packed_length,
    unpack_codes,
)

dna = st.text(alphabet="ACGT", min_size=0, max_size=300)
dna_with_n = st.text(alphabet="ACGTN", min_size=1, max_size=120)


class TestPrimitiveCodec:
    @given(dna)
    def test_roundtrip(self, seq):
        codes = encode_sequence(seq)
        packed = pack_codes(codes)
        assert packed.dtype == np.uint8
        assert packed.size == packed_length(len(seq))
        np.testing.assert_array_equal(unpack_codes(packed, len(seq)), codes)

    @given(st.integers(min_value=0, max_value=130))
    def test_roundtrip_every_small_length(self, n):
        rng = np.random.default_rng(n)
        codes = rng.integers(0, 4, size=n).astype(np.uint8)
        np.testing.assert_array_equal(unpack_codes(pack_codes(codes), n), codes)

    def test_empty(self):
        assert pack_codes(np.empty(0, dtype=np.uint8)).size == 0
        assert unpack_codes(np.empty(0, dtype=np.uint8), 0).size == 0

    def test_four_bases_per_byte(self):
        # 'ACGT' = codes 0,1,2,3 → one byte, little-endian 2-bit lanes:
        # 0b11_10_01_00 = 0xE4.
        packed = pack_codes(encode_sequence("ACGT"))
        assert packed.tolist() == [0xE4]

    def test_trailing_pad_bits_zero(self):
        packed = pack_codes(encode_sequence("TTTTT"))  # 5 bases -> 2 bytes
        assert packed.size == 2
        assert packed[1] == 0b11  # only the first lane of byte 1 is data

    def test_out_of_range_codes_rejected(self):
        with pytest.raises(ValueError, match=r"\[0, 3\]"):
            pack_codes(np.array([0, 4], dtype=np.uint8))

    @given(dna_with_n)
    def test_n_handling_follows_alphabet_rules(self, seq):
        # The codec only accepts the 4-letter alphabet: an N must be
        # sanitised on ingest (N -> replacement base), exactly as the
        # readers do, after which packing round-trips the sanitised string.
        if "N" in seq:
            with pytest.raises(ValueError):
                pack_codes(encode_sequence(seq))
        clean = sanitize(seq)
        codes = encode_sequence(clean)
        assert decode_sequence(unpack_codes(pack_codes(codes), len(clean))) == clean

    def test_short_buffer_rejected(self):
        with pytest.raises(ValueError, match="too short"):
            unpack_codes(np.zeros(1, dtype=np.uint8), 5)


read_lists = st.lists(dna, min_size=0, max_size=8)


class TestPackedReadBlock:
    @given(read_lists)
    def test_block_roundtrip(self, seqs):
        rids = np.arange(100, 100 + len(seqs), dtype=np.int64)
        block = pack_read_block(rids, [encode_sequence(s) for s in seqs])
        assert block.n_reads == len(seqs)
        for i, seq in enumerate(seqs):
            assert decode_sequence(block.codes(i)) == seq

    @given(read_lists)
    def test_serialization_tag_roundtrip(self, seqs):
        rids = np.arange(len(seqs), dtype=np.int64)
        block = pack_read_block(rids, [encode_sequence(s) for s in seqs])
        decoded = decode_payload(encode_payload(block))
        assert isinstance(decoded, PackedReadBlock)
        np.testing.assert_array_equal(decoded.rids, block.rids)
        np.testing.assert_array_equal(decoded.lengths, block.lengths)
        np.testing.assert_array_equal(decoded.packed, block.packed)

    def test_serialization_nested_in_list(self):
        # Read blocks travel as alltoallv payload lists.
        block = pack_read_block(np.array([7], dtype=np.int64),
                                [encode_sequence("ACGTACGTA")])
        payload = [block, PackedReadBlock.empty(), "tail"]
        decoded = decode_payload(encode_payload(payload))
        assert decoded[2] == "tail"
        assert decoded[1].n_reads == 0
        assert decode_sequence(decoded[0].codes(0)) == "ACGTACGTA"

    def test_reads_start_on_byte_boundaries(self):
        seqs = ["ACG", "T", "ACGTACGT"]  # 3, 1, 8 bases -> 1, 1, 2 bytes
        block = pack_read_block(np.arange(3, dtype=np.int64),
                                [encode_sequence(s) for s in seqs])
        assert block.byte_offsets.tolist() == [0, 1, 2, 4]
        for i, seq in enumerate(seqs):
            np.testing.assert_array_equal(
                unpack_codes(block.packed_slice(i), len(seq)),
                encode_sequence(seq))

    def test_wire_accounting_is_a_quarter_of_ascii(self):
        seqs = ["A" * 1000] * 10
        block = pack_read_block(np.arange(10, dtype=np.int64),
                                [encode_sequence(s) for s in seqs])
        assert block.raw_nbytes == 10_000
        assert block.packed.nbytes == 2_500
        # payload_nbytes (the trace's accounting) reflects the packed size.
        assert payload_nbytes(block) == block.wire_nbytes < 3_000
        # ...and the serialized frame matches the accounted wire size.
        assert len(encode_payload(block)) == block.wire_nbytes + 1  # +1 tag

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            PackedReadBlock(rids=np.zeros(1, dtype=np.int64),
                            lengths=np.array([5], dtype=np.int64),
                            packed=np.zeros(1, dtype=np.uint8))


class TestReadCachePackedEntries:
    def test_put_packed_is_lazy_and_roundtrips(self):
        seq = "ACGTACGTACGTA"
        codes = encode_sequence(seq)
        block = pack_read_block(np.array([3], dtype=np.int64), [codes])
        cache = ReadCache()
        cache.put_packed(3, block.packed_slice(0), len(seq))
        assert 3 in cache
        assert cache.total_bases() == len(seq)
        # First encoded access unpacks (a miss), second hits the memo.
        np.testing.assert_array_equal(cache.encoded(3), codes)
        np.testing.assert_array_equal(cache.encoded(3), codes)
        assert cache.misses == 1 and cache.hits == 1
        # The ASCII string only materialises on explicit request.
        assert cache.get_sequence(3) == seq

    def test_sequence_view_decodes_lazily(self):
        cache = ReadCache()
        cache.put(1, "ACGT")
        block = pack_read_block(np.array([2], dtype=np.int64),
                                [encode_sequence("TTTT")])
        cache.put_packed(2, block.packed_slice(0), 4)
        view = cache.sequence_view()
        assert view.cache is cache
        assert len(view) == 2 and set(view) == {1, 2}
        assert view[2] == "TTTT"
        with pytest.raises(KeyError):
            view[99]

    def test_put_matching_packed_entry_keeps_encodings(self):
        seq = "ACGTTGCA"
        cache = ReadCache()
        block = pack_read_block(np.array([5], dtype=np.int64),
                                [encode_sequence(seq)])
        cache.put_packed(5, block.packed_slice(0), len(seq))
        buf = cache.encoded(5)
        cache.put(5, seq)  # same read arriving as text must not evict
        assert cache.encoded(5) is buf

    def test_put_conflicting_sequence_evicts(self):
        cache = ReadCache()
        block = pack_read_block(np.array([5], dtype=np.int64),
                                [encode_sequence("AAAA")])
        cache.put_packed(5, block.packed_slice(0), 4)
        cache.put(5, "CCCC")
        assert cache.get_sequence(5) == "CCCC"

    def test_put_packed_does_not_clobber_existing(self):
        cache = ReadCache()
        cache.put(9, "ACGT")
        block = pack_read_block(np.array([9], dtype=np.int64),
                                [encode_sequence("TTTT")])
        cache.put_packed(9, block.packed_slice(0), 4)
        assert cache.get_sequence(9) == "ACGT"


@pytest.mark.slow
class TestWirePackingPipelineParity:
    """Packed wire must be a pure encoding change: identical science, ~4x
    fewer exchanged read-payload bytes, across both runtime backends."""

    @pytest.fixture(scope="class")
    def runs(self, micro_dataset, micro_config):
        from repro.core.driver import run_dibella

        out = {}
        for backend in ("thread", "process"):
            for packing in (True, False):
                config = (micro_config.with_backend(backend)
                          .with_wire_packing(packing))
                out[backend, packing] = run_dibella(
                    micro_dataset.reads, config=config,
                    n_nodes=1, ranks_per_node=3)
        return out

    def test_bit_identical_science_across_matrix(self, runs):
        reference = runs["thread", False]
        ref_table = reference.alignment_table()
        for key, result in runs.items():
            assert result.overlap_pairs() == reference.overlap_pairs(), key
            table = result.alignment_table()
            for column in ref_table:
                np.testing.assert_array_equal(table[column], ref_table[column],
                                              err_msg=str((key, column)))

    def test_packed_payload_at_least_3x_smaller(self, runs):
        for backend in ("thread", "process"):
            packed = runs[backend, True].counters
            ascii_ = runs[backend, False].counters
            assert packed["read_payload_raw_bytes"] == ascii_["read_payload_raw_bytes"]
            assert ascii_["read_payload_wire_bytes"] == ascii_["read_payload_raw_bytes"]
            assert (packed["read_payload_wire_bytes"] * 3
                    <= packed["read_payload_raw_bytes"])

    def test_alignment_exchange_trace_volume_drops(self, runs):
        for backend in ("thread", "process"):
            packed_bytes = (runs[backend, True].trace
                            .phase_traffic("alignment_exchange").total_bytes)
            ascii_bytes = (runs[backend, False].trace
                           .phase_traffic("alignment_exchange").total_bytes)
            assert packed_bytes < ascii_bytes

    def test_trace_identical_across_backends(self, runs):
        # Packed payload byte accounting must stay backend-independent.
        for packing in (True, False):
            thread = runs["thread", packing].trace
            process = runs["process", packing].trace
            assert thread.total_bytes() == process.total_bytes()

    def test_local_memory_accounting_mode_invariant(self, runs):
        # The cost-model input (bytes of reads held for alignment) must not
        # depend on the wire encoding, even though the packed serve path
        # memoises served reads in the owner's cache.
        for backend in ("thread", "process"):
            packed = runs[backend, True].stage("alignment")
            ascii_ = runs[backend, False].stage("alignment")
            np.testing.assert_array_equal(packed.local_bytes_per_rank,
                                          ascii_.local_bytes_per_rank)
