"""Incremental index parity: ``insert_batch`` splits vs one-shot ``finalize``.

The serve phase's resident :class:`~repro.kmers.hashtable.ShardedKmerIndex`
is built incrementally (``insert_batch``), while the batch pipeline builds
its table in one finalise over the buffered occurrences.  These tests pin
the equivalence the whole build/serve split rests on: any split of the same
occurrence stream — however batched, for any shard count — yields retained
views bit-identical to the one-shot
:meth:`~repro.kmers.hashtable.KmerHashTablePartition.finalize` oracle, and
the pipeline-level index digest agrees across runtime backends.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import DibellaPipeline, PipelineConfig
from repro.core.stages import reset_persistent_read_caches, reset_resident_indexes
from repro.kmers.hashtable import (
    KmerHashTablePartition,
    RetainedKmers,
    ShardedKmerIndex,
    shard_code_boundaries,
)
from repro.mpisim.backend import shutdown_rank_pools
from repro.mpisim.topology import Topology
from repro.seq.kmer import KmerSpec


K = 8  # small code space so counts cross min/max thresholds often


def _occurrence_stream(rng: np.random.Generator, n: int):
    """A synthetic occurrence stream with heavy code reuse (dense groups)."""
    codes = rng.integers(0, 4**K, size=n, dtype=np.uint64) % np.uint64(997)
    rids = rng.integers(0, 40, size=n, dtype=np.int64)
    positions = rng.integers(0, 5000, size=n, dtype=np.int64)
    strands = rng.integers(0, 2, size=n, dtype=np.int64).astype(bool)
    return codes, rids, positions, strands


def _oracle(codes, rids, positions, strands, min_count, max_count) -> RetainedKmers:
    """The batch pipeline's one-shot build over the same stream."""
    partition = KmerHashTablePartition()
    partition.accept_all_keys()
    partition.add_occurrences(codes, rids, positions, strands)
    return partition.finalize(min_count=min_count, max_count=max_count)


def _assert_retained_equal(got: RetainedKmers, expected: RetainedKmers) -> None:
    np.testing.assert_array_equal(got.codes, expected.codes)
    np.testing.assert_array_equal(got.offsets, expected.offsets)
    np.testing.assert_array_equal(got.rids, expected.rids)
    np.testing.assert_array_equal(got.positions, expected.positions)
    np.testing.assert_array_equal(got.strands, expected.strands)


@pytest.mark.parametrize("n_shards", [1, 3, 4])
@pytest.mark.parametrize("n_batches", [1, 2, 7])
def test_insert_batch_splits_match_one_shot_finalize(n_shards, n_batches):
    rng = np.random.default_rng(42)
    codes, rids, positions, strands = _occurrence_stream(rng, 3000)
    expected = _oracle(codes, rids, positions, strands, min_count=2, max_count=12)

    index = ShardedKmerIndex(shard_code_boundaries(K, n_shards))
    bounds = [codes.size * i // n_batches for i in range(n_batches + 1)]
    for lo, hi in zip(bounds[:-1], bounds[1:]):
        index.insert_batch(codes[lo:hi], rids[lo:hi], positions[lo:hi],
                           strands[lo:hi])

    assert index.n_shards == n_shards
    assert index.n_occurrences == codes.size
    _assert_retained_equal(index.retained(min_count=2, max_count=12), expected)


@pytest.mark.parametrize("n_shards", [1, 4])
def test_shard_views_concatenate_to_the_whole(n_shards):
    rng = np.random.default_rng(7)
    codes, rids, positions, strands = _occurrence_stream(rng, 1500)
    index = ShardedKmerIndex(shard_code_boundaries(K, n_shards))
    index.insert_batch(codes, rids, positions, strands)

    whole = index.retained(min_count=2, max_count=None)
    parts = [index.retained_shard(s, min_count=2, max_count=None)
             for s in range(n_shards)]
    assert sum(p.n_kmers for p in parts) == whole.n_kmers
    np.testing.assert_array_equal(
        np.concatenate([p.codes for p in parts]), whole.codes)
    np.testing.assert_array_equal(
        np.concatenate([p.rids for p in parts]), whole.rids)


def test_digest_is_insertion_order_independent():
    rng = np.random.default_rng(11)
    codes, rids, positions, strands = _occurrence_stream(rng, 800)

    forward = ShardedKmerIndex(shard_code_boundaries(K, 4))
    forward.insert_batch(codes, rids, positions, strands)

    # Same occurrence set, inserted in reverse in two batches.
    rev = slice(None, None, -1)
    backward = ShardedKmerIndex(shard_code_boundaries(K, 4))
    backward.insert_batch(codes[rev][:400], rids[rev][:400],
                          positions[rev][:400], strands[rev][:400])
    backward.insert_batch(codes[rev][400:], rids[rev][400:],
                          positions[rev][400:], strands[rev][400:])

    assert forward.digest() == backward.digest()

    # A different stream digests differently (sanity, not a collision proof).
    other = ShardedKmerIndex(shard_code_boundaries(K, 4))
    other.insert_batch(codes, rids, positions + 1, strands)
    assert forward.digest() != other.digest()


def test_from_partition_drains_the_buffers():
    rng = np.random.default_rng(23)
    codes, rids, positions, strands = _occurrence_stream(rng, 600)
    partition = KmerHashTablePartition()
    partition.accept_all_keys()
    partition.add_occurrences(codes, rids, positions, strands)
    expected = _oracle(codes, rids, positions, strands, min_count=2, max_count=None)

    index = ShardedKmerIndex.from_partition(partition,
                                            shard_code_boundaries(K, 3))
    assert partition.n_occurrences_buffered == 0  # buffers were released
    _assert_retained_equal(index.retained(min_count=2, max_count=None), expected)


@pytest.mark.slow
def test_pipeline_index_digest_matches_across_backends(micro_dataset):
    """build_index produces content-identical resident indexes on both backends.

    The process backend's indexes live in worker processes the test cannot
    reach, so the comparison goes through the ``index_digest`` counter — an
    insertion-order-independent content hash summed over ranks.
    """
    config = PipelineConfig(kmer=KmerSpec(k=15), coverage_hint=12.0,
                            error_rate_hint=0.08)
    topology = Topology.single_node(2)
    digests = {}
    try:
        for backend in ("thread", "process"):
            pipeline = DibellaPipeline(config=config.with_backend(backend),
                                       topology=topology)
            result = pipeline.build_index(micro_dataset.reads)
            digests[backend] = result.counters["index_digest"]
            assert result.counters["index_build_runs"] == 2
            assert result.counters["index_retained_kmers"] > 0
    finally:
        shutdown_rank_pools()
        reset_persistent_read_caches()
        reset_resident_indexes()
    assert digests["thread"] == digests["process"]
