"""Integration tests: the full diBELLA pipeline end to end.

These tests exercise the real stack — synthetic reads, the simulated SPMD
runtime, all four stages — and check the scientific invariants the system
must satisfy: detected overlaps against ground truth, consistency of the
global counters, and invariance of the *output* under different rank counts
(the distributed decomposition must not change the answer).
"""

import numpy as np
import pytest

from repro.core.config import PipelineConfig

pytestmark = pytest.mark.slow
from repro.core.pipeline import DibellaPipeline
from repro.core.driver import run_dibella
from repro.core.result import STAGE_NAMES
from repro.mpisim.topology import Topology
from repro.overlap.seeds import SeedStrategy
from repro.seq.kmer import KmerSpec
from repro.stats.quality import overlap_recall_precision


@pytest.fixture(scope="module")
def micro_run(micro_dataset, micro_config):
    """One pipeline run on the micro data set, shared by the checks below."""
    return run_dibella(micro_dataset.reads, config=micro_config,
                       n_nodes=1, ranks_per_node=2)


class TestEndToEnd:
    def test_finds_true_overlaps(self, micro_dataset, micro_run):
        truth = micro_dataset.true_overlaps(min_overlap=400)
        quality = overlap_recall_precision(micro_run.overlap_pairs(), truth)
        assert quality.n_true > 10
        assert quality.recall > 0.9

    def test_counters_consistent(self, micro_run):
        counters = micro_run.counters
        assert counters["kmers_parsed"] == counters["kmers_received_bloom"]
        assert counters["kmers_parsed"] == counters["kmers_received_hashtable"]
        assert counters["retained_kmers"] <= counters["distinct_keys"]
        assert counters["occurrences_stored"] >= counters["retained_occurrences"]
        assert micro_run.n_alignments == counters["alignment_tasks"]
        assert counters["accepted_alignments"] <= counters["alignments"]

    def test_one_seed_means_one_alignment_per_pair(self, micro_run):
        assert micro_run.n_alignments == micro_run.n_overlap_pairs

    def test_bloom_sized_from_distinct_estimate(self, micro_run):
        # The HLL pre-pass estimates the number of *distinct* k-mers; the
        # Bloom filter is sized from it, not from the instance count.
        estimate = micro_run.counters["hll_distinct_estimate"]
        assert estimate > 0
        # Distinct >= k-mers seen at least twice (the candidate keys), up to
        # the ~1% sketch error; and never more than the parsed instances.
        assert estimate >= 0.9 * micro_run.counters["distinct_keys"]
        assert estimate <= micro_run.counters["kmers_parsed"]

    def test_overlap_tables_match_records(self, micro_run):
        tables = micro_run.overlap_tables()
        assert sum(len(t) for t in tables) == micro_run.n_overlap_pairs
        flat_pairs = {(int(a), int(b)) for t in tables
                      for a, b in zip(t.rid_a, t.rid_b)}
        assert flat_pairs == micro_run.overlap_pairs()

    def test_stage_records_complete(self, micro_run):
        assert [s.name for s in micro_run.stages] == list(STAGE_NAMES)
        for record in micro_run.stages:
            assert record.work_per_rank.shape == (2,)
            assert record.total_work >= 0
            assert record.load_imbalance() >= 1.0
        assert micro_run.stage("bloom").includes_first_alltoallv
        assert not micro_run.stage("alignment").includes_first_alltoallv

    def test_trace_has_all_phases(self, micro_run):
        phases = set(micro_run.trace.phases())
        assert {"bloom_exchange", "hashtable_exchange", "overlap_exchange",
                "alignment_exchange"} <= phases
        assert micro_run.trace.total_bytes() > 0

    def test_alignment_table_matches_accepted(self, micro_run):
        table = micro_run.alignment_table()
        assert table["rid_a"].size == micro_run.counters["accepted_alignments"]
        assert (table["rid_a"] < table["rid_b"]).all()
        assert (table["score"] >= 0).all()

    def test_summary_and_wall_time(self, micro_run):
        summary = micro_run.summary()
        assert summary["wall_seconds"] > 0
        assert summary["overlap_pairs"] == micro_run.n_overlap_pairs

    def test_stage_wall_seconds(self, micro_run):
        walls = micro_run.stage_wall_seconds()
        assert set(walls) == set(STAGE_NAMES)
        assert walls["alignment"]["compute"] > 0


class TestDecompositionInvariance:
    """The distributed decomposition must not change the scientific output."""

    @pytest.mark.parametrize("n_nodes,ranks_per_node", [(1, 1), (1, 3), (2, 2)])
    def test_overlap_pairs_invariant(self, micro_dataset, micro_config,
                                     n_nodes, ranks_per_node):
        baseline = run_dibella(micro_dataset.reads, config=micro_config,
                               n_nodes=1, ranks_per_node=2)
        other = run_dibella(micro_dataset.reads, config=micro_config,
                            n_nodes=n_nodes, ranks_per_node=ranks_per_node)
        assert other.overlap_pairs() == baseline.overlap_pairs()
        assert other.n_retained_kmers == baseline.n_retained_kmers
        assert other.counters["distinct_keys"] == baseline.counters["distinct_keys"]

    def test_task_counts_balanced(self, micro_dataset, micro_config):
        result = run_dibella(micro_dataset.reads, config=micro_config,
                             n_nodes=2, ranks_per_node=2)
        tasks = np.array([r.counters.get("alignments", 0) for r in result.rank_reports])
        assert tasks.sum() == result.n_alignments
        # Algorithm 1 + uniform RIDs: task counts per rank within ~50% of the mean.
        assert tasks.max() <= 1.6 * tasks.mean()


class TestConfigurationEffects:
    def test_more_seeds_means_more_alignments(self, micro_dataset):
        base = PipelineConfig(kmer=KmerSpec(k=15), coverage_hint=12, error_rate_hint=0.08)
        one = run_dibella(micro_dataset.reads, config=base, ranks_per_node=2)
        all_seeds = base.with_seed_strategy(SeedStrategy.separated_by(15))
        many = run_dibella(micro_dataset.reads, config=all_seeds, ranks_per_node=2)
        assert many.n_alignments > one.n_alignments
        assert many.n_overlap_pairs == one.n_overlap_pairs

    def test_min_alignment_score_filters_output(self, micro_dataset, micro_config):
        from dataclasses import replace
        strict = replace(micro_config, min_alignment_score=150)
        loose = replace(micro_config, min_alignment_score=0)
        strict_run = run_dibella(micro_dataset.reads, config=strict, ranks_per_node=2)
        loose_run = run_dibella(micro_dataset.reads, config=loose, ranks_per_node=2)
        assert (strict_run.counters["accepted_alignments"]
                < loose_run.counters["accepted_alignments"])
        assert strict_run.n_alignments == loose_run.n_alignments

    def test_high_freq_threshold_filters_repeats(self, small_dataset):
        permissive = PipelineConfig(kmer=KmerSpec(k=15), high_freq_threshold=4096,
                                    coverage_hint=15, error_rate_hint=0.10)
        strict = PipelineConfig(kmer=KmerSpec(k=15), high_freq_threshold=8,
                                coverage_hint=15, error_rate_hint=0.10)
        run_perm = run_dibella(small_dataset.reads, config=permissive, ranks_per_node=2)
        run_strict = run_dibella(small_dataset.reads, config=strict, ranks_per_node=2)
        assert run_strict.n_retained_kmers < run_perm.n_retained_kmers
        assert run_strict.n_overlap_pairs <= run_perm.n_overlap_pairs

    def test_streaming_batches_do_not_change_output(self, micro_dataset, micro_config):
        from dataclasses import replace
        big_batches = run_dibella(micro_dataset.reads, config=micro_config, ranks_per_node=2)
        tiny_batches = run_dibella(micro_dataset.reads,
                                   config=replace(micro_config, batch_reads=5),
                                   ranks_per_node=2)
        assert tiny_batches.overlap_pairs() == big_batches.overlap_pairs()
        # More supersteps means more collective calls in the k-mer stages.
        assert (tiny_batches.trace.phase_traffic("bloom_exchange").collective_calls
                >= big_batches.trace.phase_traffic("bloom_exchange").collective_calls)

    def test_empty_readset_rejected(self, micro_config):
        from repro.seq.records import ReadSet
        pipeline = DibellaPipeline(config=micro_config, topology=Topology.single_node(2))
        with pytest.raises(ValueError):
            pipeline.run(ReadSet())

    def test_hash_table_sharding_does_not_change_output(self, micro_dataset,
                                                        micro_config):
        """Code-range sharding is a schedule change: identical science, lower
        peak retained-table memory."""
        unsharded = run_dibella(micro_dataset.reads,
                                config=micro_config.with_hash_table_shards(1),
                                ranks_per_node=2)
        sharded = run_dibella(micro_dataset.reads,
                              config=micro_config.with_hash_table_shards(5),
                              ranks_per_node=2)
        assert sharded.overlap_pairs() == unsharded.overlap_pairs()
        sharded_table, ref_table = sharded.alignment_table(), unsharded.alignment_table()
        for column in ref_table:
            np.testing.assert_array_equal(sharded_table[column], ref_table[column])
        assert sharded.counters["retained_kmers"] == unsharded.counters["retained_kmers"]
        assert (sharded.counters["retained_occurrences"]
                == unsharded.counters["retained_occurrences"])
        # Streaming one code range at a time bounds the grouped table at the
        # largest shard — strictly below the monolithic build's footprint.
        assert (0 < sharded.counters["retained_table_peak_bytes"]
                < unsharded.counters["retained_table_peak_bytes"])
        # Identical pair volume regardless of shard count (the trace only
        # gains the tiny per-shard superstep-count allreduces).
        assert (sharded.trace.phase_traffic("overlap_exchange").total_bytes
                >= unsharded.trace.phase_traffic("overlap_exchange").total_bytes)
        assert (sharded.counters["pairs_generated"]
                == unsharded.counters["pairs_generated"])


class TestConfigValidation:
    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            PipelineConfig(min_kmer_count=0)
        with pytest.raises(ValueError):
            PipelineConfig(high_freq_threshold=1, min_kmer_count=2)
        with pytest.raises(ValueError):
            PipelineConfig(bloom_fp_rate=0.0)
        with pytest.raises(ValueError):
            PipelineConfig(batch_reads=0)
        with pytest.raises(ValueError):
            PipelineConfig(kernel="bogus")
        with pytest.raises(ValueError):
            PipelineConfig(partition_strategy="bogus")
        with pytest.raises(ValueError):
            PipelineConfig(owner_heuristic="bogus")

    def test_resolve_high_freq_threshold(self):
        explicit = PipelineConfig(high_freq_threshold=42)
        assert explicit.resolve_high_freq_threshold() == 42
        derived = PipelineConfig(coverage_hint=100, error_rate_hint=0.15)
        default = PipelineConfig()
        assert derived.resolve_high_freq_threshold() > 0
        assert derived.resolve_high_freq_threshold() >= default.resolve_high_freq_threshold()

    def test_with_helpers(self):
        config = PipelineConfig()
        assert config.with_kernel("banded").kernel == "banded"
        strategy = SeedStrategy.separated_by(500)
        assert config.with_seed_strategy(strategy).seed_strategy == strategy
        assert config.with_pool(True).pool is True
        assert config.with_double_buffer(False).double_buffer is False


class TestReadOwnerCoverage:
    """An incomplete read partition must fail loudly, not route to garbage."""

    def test_missing_reads_raise_descriptive_error(self, toy_reads):
        from repro.core.stages import _build_read_owner

        with pytest.raises(ValueError, match=r"does not cover 2 of 4 reads"):
            _build_read_owner(toy_reads, [[0], [3]])

    def test_error_names_missing_rids(self, toy_reads):
        from repro.core.stages import _build_read_owner

        with pytest.raises(ValueError, match=r"missing RIDs: 1, 2"):
            _build_read_owner(toy_reads, [[0], [3]])

    def test_full_cover_builds_owner_map(self, toy_reads):
        from repro.core.stages import _build_read_owner

        owner = _build_read_owner(toy_reads, [[0, 2], [1, 3]])
        np.testing.assert_array_equal(owner, [0, 1, 0, 1])

    def test_doubly_assigned_read_raises(self, toy_reads):
        from repro.core.stages import _build_read_owner

        with pytest.raises(ValueError, match="more than one rank"):
            _build_read_owner(toy_reads, [[0, 1], [1, 2, 3]])

    def test_pipeline_program_propagates_the_error(self, toy_reads, micro_config):
        from repro.core.stages import run_rank_pipeline
        from repro.mpisim.errors import RankFailedError
        from repro.mpisim.runtime import spmd_run

        with pytest.raises(RankFailedError, match="does not cover"):
            spmd_run(1, run_rank_pipeline, toy_reads, [[0, 1, 2]],
                     micro_config, 8)
