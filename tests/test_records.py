"""Unit tests for repro.seq.records."""

import numpy as np
import pytest

from repro.seq.records import Read, ReadSet


class TestRead:
    def test_basic(self):
        read = Read(name="r", sequence="ACGT")
        assert len(read) == 4
        assert read.nbytes == 4
        assert not read.has_truth()

    def test_quality_length_mismatch(self):
        with pytest.raises(ValueError):
            Read(name="r", sequence="ACGT", quality="II")

    def test_truth(self):
        read = Read(name="r", sequence="ACGT", true_start=10, true_end=14)
        assert read.has_truth()


class TestReadSet:
    def test_construction_and_rids(self):
        rs = ReadSet([Read(name="a", sequence="ACGT"), Read(name="b", sequence="GGTT")])
        assert len(rs) == 2
        assert rs[0].name == "a"
        assert rs[1].name == "b"

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            ReadSet([Read(name="a", sequence="ACGT"), Read(name="a", sequence="GG")])

    def test_add_returns_rid(self):
        rs = ReadSet()
        assert rs.add(Read(name="a", sequence="AC")) == 0
        assert rs.add(Read(name="b", sequence="GT")) == 1

    def test_totals(self):
        rs = ReadSet([Read(name="a", sequence="ACGT"), Read(name="b", sequence="GGTTAA")])
        assert rs.total_bases == 10
        assert rs.mean_read_length == 5.0
        np.testing.assert_array_equal(rs.read_lengths(), [4, 6])

    def test_empty_stats(self):
        rs = ReadSet()
        assert rs.total_bases == 0
        assert rs.mean_read_length == 0.0

    def test_total_kmers(self):
        rs = ReadSet([Read(name="a", sequence="ACGTACGT"), Read(name="b", sequence="AC")])
        # 8 - 3 + 1 = 6 from the first read, 0 from the too-short second.
        assert rs.total_kmers(3) == 6

    def test_subset(self):
        rs = ReadSet([Read(name=f"r{i}", sequence="ACGT") for i in range(5)])
        sub = rs.subset([1, 3])
        assert len(sub) == 2
        assert sub.names() == ["r1", "r3"]

    def test_iteration(self):
        rs = ReadSet([Read(name="a", sequence="AC"), Read(name="b", sequence="GT")])
        assert [r.name for r in rs] == ["a", "b"]
