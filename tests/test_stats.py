"""Unit tests for repro.stats."""

import numpy as np
import pytest

from repro.data.datasets import DatasetSpec, generate_dataset
from repro.data.genome import GenomeSpec
from repro.data.reads import ReadSimSpec
from repro.stats.histograms import kmer_spectrum, overlap_count_histogram, read_length_histogram
from repro.stats.load_balance import load_imbalance, per_node_imbalance
from repro.stats.quality import OverlapQuality, overlap_recall_precision
from repro.stats.scaling import (
    efficiency_series,
    geometric_mean,
    speedup_series,
    strong_scaling_efficiency,
    throughput_series,
)


class TestLoadImbalance:
    def test_perfect(self):
        assert load_imbalance(np.array([5.0, 5.0, 5.0])) == 1.0

    def test_skewed(self):
        assert load_imbalance(np.array([10.0, 0.0])) == 2.0

    def test_degenerate(self):
        assert load_imbalance(np.array([])) == 1.0
        assert load_imbalance(np.zeros(4)) == 1.0

    def test_per_node(self):
        # Ranks are imbalanced but nodes (pairs of ranks) are perfectly balanced.
        per_rank = np.array([10.0, 0.0, 5.0, 5.0])
        assert load_imbalance(per_rank) == 2.0
        assert per_node_imbalance(per_rank, ranks_per_node=2) == 1.0

    def test_per_node_validation(self):
        with pytest.raises(ValueError):
            per_node_imbalance(np.ones(3), ranks_per_node=2)
        with pytest.raises(ValueError):
            per_node_imbalance(np.ones(4), ranks_per_node=0)


class TestScaling:
    def test_strong_scaling_efficiency(self):
        assert strong_scaling_efficiency(100.0, 25.0, 4) == 1.0
        assert strong_scaling_efficiency(100.0, 50.0, 4) == 0.5

    def test_speedup_and_efficiency_series(self):
        times = {1: 100.0, 2: 60.0, 4: 40.0}
        speedups = speedup_series(times)
        assert speedups[1] == 1.0
        assert speedups[4] == pytest.approx(2.5)
        eff = efficiency_series(times)
        assert eff[1] == 1.0
        assert eff[4] == pytest.approx(2.5 / 4)

    def test_superlinear_allowed(self):
        eff = efficiency_series({1: 100.0, 2: 40.0})
        assert eff[2] > 1.0

    def test_throughput_series(self):
        tp = throughput_series(1000.0, {1: 10.0, 2: 5.0})
        assert tp[1] == 100.0
        assert tp[2] == 200.0

    def test_empty_series(self):
        assert speedup_series({}) == {}
        assert efficiency_series({}) == {}

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert geometric_mean([]) == 0.0
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_validation(self):
        with pytest.raises(ValueError):
            strong_scaling_efficiency(1.0, 1.0, 0)
        with pytest.raises(ValueError):
            throughput_series(-1.0, {1: 1.0})


class TestQuality:
    def test_recall_precision(self):
        truth = {(0, 1): 500, (1, 2): 800, (2, 3): 900}
        detected = {(0, 1), (2, 3), (5, 6)}
        q = overlap_recall_precision(detected, truth)
        assert q.recall == pytest.approx(2 / 3)
        assert q.precision == pytest.approx(2 / 3)
        assert 0 < q.f1 < 1

    def test_pair_order_normalised(self):
        q = overlap_recall_precision({(1, 0)}, {(0, 1): 100})
        assert q.recall == 1.0 and q.precision == 1.0

    def test_degenerate(self):
        assert overlap_recall_precision(set(), {}).recall == 1.0
        assert overlap_recall_precision(set(), {}).precision == 1.0
        assert OverlapQuality(0, 0, 0).f1 >= 0


class TestHistograms:
    @pytest.fixture(scope="class")
    def reads(self):
        spec = DatasetSpec(
            name="hist",
            genome=GenomeSpec(length=4000, seed=1),
            reads=ReadSimSpec(coverage=10, mean_read_length=800, min_read_length=300,
                              error_rate=0.12, seed=2),
        )
        return generate_dataset(spec).reads

    def test_kmer_spectrum_singleton_dominated(self, reads):
        spectrum = kmer_spectrum(reads, k=17)
        # Long-read k-mer sets are dominated by erroneous singletons (§6).
        assert spectrum["singleton_fraction"] > 0.5
        assert spectrum["total_kmers"] > spectrum["distinct_kmers"]
        assert spectrum["histogram"].sum() == spectrum["distinct_kmers"]

    def test_read_length_histogram(self, reads):
        summary = read_length_histogram(reads, bin_width=500)
        assert summary["mean"] > 0
        assert summary["n50"] >= summary["histogram"].argmax() * 500

    def test_read_length_empty(self):
        from repro.seq.records import ReadSet
        assert read_length_histogram(ReadSet())["n50"] == 0

    def test_overlap_count_histogram(self):
        hist = overlap_count_histogram(np.array([0, 1, 1, 5, 200]), max_bin=10)
        assert hist[0] == 1
        assert hist[1] == 2
        assert hist[10] == 1
        with pytest.raises(ValueError):
            overlap_count_histogram(np.array([1]), max_bin=0)
