#!/usr/bin/env python3
"""Wrapper for the SPMD lint checker: ``scripts/spmdlint.py [paths...]``.

Equivalent to ``PYTHONPATH=src python -m repro.analysis.lint`` from the repo
root; defaults to linting ``src/``.  See docs/static-analysis.md for the
rule catalogue (SL001-SL005) and the suppression syntax.
"""

import os
import sys

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(_REPO_ROOT, "src"))

from repro.analysis.lint import main  # noqa: E402

if __name__ == "__main__":
    os.chdir(_REPO_ROOT)
    sys.exit(main())
