#!/usr/bin/env bash
# Minimal CI for the diBELLA reproduction.
#
# Tiers:
#   fast  — unit tests only (-m "not slow"), a few seconds; run on every change
#   slow  — the end-to-end pipeline / harness / baseline tests
#   bench — the overlap microbenchmark perf gate (>= 5x over the loop oracle)
#
# Usage:
#   scripts/ci.sh          # everything (the tier-1 gate plus the perf gate)
#   scripts/ci.sh fast     # just the fast tier
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

tier="${1:-all}"

echo "== fast tier: unit tests =="
python -m pytest tests -m "not slow" -q

if [ "$tier" = "all" ]; then
    echo "== slow tier: end-to-end pipeline tests =="
    python -m pytest tests -m slow -q

    echo "== perf gate: overlap microbenchmark =="
    python benchmarks/bench_overlap_microbench.py
fi
