#!/usr/bin/env bash
# Minimal CI for the diBELLA reproduction.
#
# Tiers:
#   docs  — dead-link check over README.md and docs/ (always runs first).
#   lint  — spmdlint (src/repro/analysis): the SPMD correctness rules
#           SL001-SL005 over src/, zero findings required; plus a ruff
#           companion pass (pinned ruff.toml) when a ruff binary is on
#           PATH (the container does not ship one, so it is gated).
#   fast  — unit tests only (-m "not slow"), a few seconds; run on every change.
#           Runs eight times: under the default thread backend, under the
#           multiprocess shared-memory backend (DIBELLA_BACKEND=process),
#           under the process backend with the persistent rank pool
#           (DIBELLA_POOL=1) so pooled engine reuse is exercised suite-wide,
#           with 2-bit wire packing disabled (DIBELLA_WIRE_PACKING=0) so
#           the ASCII read-exchange fallback stays exercised, with
#           double buffering disabled (DIBELLA_DOUBLE_BUFFER=0) so every
#           stage's bulk-synchronous superstep schedule stays exercised,
#           with the minimizer seed mode (DIBELLA_SEED_MODE=minimizer)
#           so the windowed-sketch front-end of stages 1-3 is exercised
#           suite-wide, and with the hierarchical two-level collectives
#           (DIBELLA_COLLECTIVE=hier) so every alltoallv in the suite rides
#           the gather/leader-exchange/scatter protocol.  An eighth pass
#           runs with the runtime sanitizer armed (DIBELLA_SANITIZE=1):
#           collective congruence checks, split-phase lifecycle guards and
#           the hang watchdog across the whole fast tier, proving the
#           checks are observation-only.
#   serve — build/serve smoke (scripts/serve_smoke.py): build a resident
#           index on a pooled process backend, drain two query batches,
#           assert zero rebuild counters.  Pure counter checks, runs on
#           every change.
#   slow  — the end-to-end pipeline / harness / baseline tests, also under
#           both runtime backends.
#   bench — the perf gates: the overlap microbenchmark (pair generation,
#           consolidation and seed selection vs their loop oracles) and the
#           backend scaling bench (process-backend overlap-stage speedup,
#           double-buffered exposed-exchange reduction for the overlap and
#           k-mer stages, pool amortisation — enforced only on hosts with
#           enough cores — the serve-latency gate: warm query-batch p99
#           well under the cold one-shot wall, zero rebuilds always
#           asserted — the wire-packing byte gate: packed alignment
#           read payload <= 0.3x raw, always enforced — the seed-sketch
#           ablation gate: minimizer mode at w=11 must cut stage 1-3 k-mer
#           bytes >= 3x and the retained-table peak >= 2x at >= 95% recall
#           of the baseline's true overlaps, enforced on >= 4-core hosts —
#           and the hier-collective gate: flat-vs-hier bit identity, the
#           exact leader-protocol segment drop and cross-group byte
#           equality always asserted, the projected exposed-exchange win
#           on the grouped Cori deployment enforced on >= 4-core hosts).
#
# Usage:
#   scripts/ci.sh          # everything (the tier-1 gate plus the perf gates)
#   scripts/ci.sh fast     # just the fast tier
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

tier="${1:-all}"

echo "== docs: dead-link check (README.md, docs/) =="
python scripts/check_doc_links.py

echo "== lint: spmdlint SL001-SL005 over src/ (zero findings required) =="
python -m repro.analysis.lint src/

if command -v ruff >/dev/null 2>&1; then
    echo "== lint: ruff companion pass (pinned ruff.toml) =="
    ruff check --config ruff.toml src tests scripts benchmarks
else
    echo "== lint: ruff not on PATH; skipping companion pass =="
fi

echo "== fast tier: unit tests (thread backend) =="
python -m pytest tests -m "not slow" -q

echo "== fast tier: unit tests (process backend) =="
DIBELLA_BACKEND=process python -m pytest tests -m "not slow" -q

echo "== fast tier: unit tests (process backend + persistent rank pool) =="
DIBELLA_POOL=1 DIBELLA_BACKEND=process python -m pytest tests -m "not slow" -q

echo "== fast tier: unit tests (ASCII wire fallback, DIBELLA_WIRE_PACKING=0) =="
DIBELLA_WIRE_PACKING=0 python -m pytest tests -m "not slow" -q

echo "== fast tier: unit tests (bulk-synchronous supersteps, DIBELLA_DOUBLE_BUFFER=0) =="
DIBELLA_DOUBLE_BUFFER=0 python -m pytest tests -m "not slow" -q

echo "== fast tier: unit tests (minimizer seed mode, DIBELLA_SEED_MODE=minimizer) =="
DIBELLA_SEED_MODE=minimizer python -m pytest tests -m "not slow" -q

echo "== fast tier: unit tests (hierarchical collectives, DIBELLA_COLLECTIVE=hier) =="
DIBELLA_COLLECTIVE=hier python -m pytest tests -m "not slow" -q

echo "== fast tier: unit tests (runtime sanitizer armed, DIBELLA_SANITIZE=1) =="
DIBELLA_SANITIZE=1 python -m pytest tests -m "not slow" -q

echo "== serve smoke: resident index, 2 query batches, zero rebuilds =="
python scripts/serve_smoke.py

echo "== chaos smoke: rank killed mid-batch, pool respawned, batch retried =="
python scripts/serve_smoke.py --chaos

if [ "$tier" = "all" ]; then
    echo "== slow tier: end-to-end pipeline tests (thread backend) =="
    python -m pytest tests -m slow -q

    echo "== slow tier: end-to-end pipeline tests (process backend) =="
    DIBELLA_BACKEND=process python -m pytest tests -m slow -q

    echo "== perf gate: overlap microbenchmark =="
    python benchmarks/bench_overlap_microbench.py

    echo "== perf gate: backend scaling =="
    python benchmarks/bench_backend_scaling.py

    echo "== perf gate: seed-sketch ablation (minimizer volume/recall) =="
    python benchmarks/bench_ablation_seed_sketch.py
fi
