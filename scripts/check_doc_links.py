#!/usr/bin/env python
"""Dead-link checker for the repo's Markdown documentation.

Scans ``README.md`` and every ``docs/*.md`` for Markdown links whose target
is a *relative path* (external ``http(s)``/``mailto`` links and pure
``#anchor`` references are skipped) and verifies the target file exists
relative to the file containing the link.  Exits nonzero listing every dead
link — the CI step that keeps the cross-linked docs
(``README.md`` ↔ ``docs/architecture.md`` ↔ ``docs/wire-format.md`` ↔
``docs/runtime.md``) from silently rotting as files move.

Usage: ``python scripts/check_doc_links.py`` (from anywhere; paths resolve
against the repo root).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: Markdown inline links: [text](target) — target captured without title.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

#: Targets that are not relative file paths.
_EXTERNAL = re.compile(r"^(?:[a-z][a-z0-9+.-]*:|#)", re.IGNORECASE)


def doc_files(root: Path) -> list[Path]:
    """The Markdown files the checker covers."""
    files = []
    readme = root / "README.md"
    if readme.exists():
        files.append(readme)
    files.extend(sorted((root / "docs").glob("*.md")))
    return files


def dead_links(path: Path) -> list[tuple[int, str]]:
    """(line number, target) of every relative link in *path* that 404s."""
    missing = []
    for lineno, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        for match in _LINK.finditer(line):
            target = match.group(1)
            if _EXTERNAL.match(target):
                continue
            relative = target.split("#", 1)[0]
            if not relative:
                continue
            if not (path.parent / relative).exists():
                missing.append((lineno, target))
    return missing


def main() -> int:
    root = Path(__file__).resolve().parent.parent
    files = doc_files(root)
    if not files:
        print("check_doc_links: no Markdown files found", file=sys.stderr)
        return 1
    failures = 0
    checked = 0
    for path in files:
        for lineno, target in dead_links(path):
            print(f"{path.relative_to(root)}:{lineno}: dead link -> {target}",
                  file=sys.stderr)
            failures += 1
        checked += 1
    if failures:
        print(f"check_doc_links: {failures} dead link(s) across {checked} file(s)",
              file=sys.stderr)
        return 1
    print(f"check_doc_links: OK ({checked} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
