"""CI smoke for the build/serve split: build once, serve twice, rebuild never.

Builds a resident index over 75% of a tiny synthetic data set (pooled
process backend), drains two query batches through
:class:`~repro.core.service.AlignmentService`, and asserts the residency
contract:

* every batch reports ``index_reuse_hits`` from all ranks and zero
  ``index_build_runs``;
* no batch moves any stage-1/2 build traffic (``kmers_received_bloom`` and
  ``kmers_received_hashtable`` both zero);
* both batches produce alignments (the serve path does real work, it is
  not vacuously "fast").

With ``--chaos`` the same session runs under a deterministic fault plan
that SIGKILLs a rank mid-way through the first query batch
(``docs/fault-tolerance.md``): the service must detect the death, respawn
the pool, retry the batch, and report the recovery in the batch counters —
while the second batch reuses the rebuilt resident index as usual.

Pure counter checks — deterministic on any host, so ``ci.sh`` runs this on
every change (no timing, unlike the serve-latency gate in
``benchmarks/bench_backend_scaling.py``).
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import AlignmentService, PipelineConfig
from repro.core.stages import reset_persistent_read_caches, reset_resident_indexes
from repro.data.datasets import DatasetSpec, generate_dataset
from repro.data.genome import GenomeSpec
from repro.data.reads import ReadSimSpec
from repro.mpisim.backend import reset_recovery_counters, shutdown_rank_pools
from repro.mpisim.topology import Topology
from repro.seq.kmer import KmerSpec
from repro.seq.records import ReadSet

RANKS = 4

#: --chaos: kill rank 1 at superstep 2 of the first query batch (the index
#: build is run 0); retried runs are fault-free, so recovery is one respawn.
CHAOS_PLAN = "kill:rank=1:step=2:run=1"


def main() -> int:
    chaos = "--chaos" in sys.argv[1:]
    spec = DatasetSpec(
        name="serve-smoke",
        genome=GenomeSpec(length=4000, repeat_fraction=0.0, seed=77),
        reads=ReadSimSpec(coverage=15.0, mean_read_length=900,
                          min_read_length=400, error_rate=0.08, seed=78),
    )
    reads = list(generate_dataset(spec).reads)
    n_index = (3 * len(reads)) // 4
    queries = reads[n_index:]
    assert len(queries) >= 2, "smoke data set too small to form 2 query batches"

    reset_recovery_counters()
    config = PipelineConfig(kmer=KmerSpec(k=15), coverage_hint=15.0,
                            error_rate_hint=0.08, backend="process", pool=True,
                            fault_plan=CHAOS_PLAN if chaos else None,
                            serve_max_retries=2)
    service = AlignmentService(ReadSet(reads[:n_index]), config=config,
                               topology=Topology.single_node(RANKS))
    try:
        build = service.build()
        print(f"serve smoke: index built ({build.counters['index_retained_kmers']} "
              f"retained k-mers on {RANKS} ranks)")
        half = len(queries) // 2
        service.submit(queries[:half])
        records = service.drain()
        service.submit(queries[half:])
        records += service.drain()
        assert len(records) == 2, f"expected 2 query batches, got {len(records)}"
        for record in records:
            counters = record.result.counters
            label = f"batch {record.batch_index}"
            recovered = chaos and record.batch_index == 0
            if recovered:
                # The killed batch was retried on a respawned pool: the
                # retry rebuilds the resident index inside the run, and
                # the recovery counters carry the evidence.
                assert counters["rank_failures_detected"] >= 1, \
                    f"{label}: injected kill was never detected"
                assert counters["pool_respawns"] == RANKS, \
                    f"{label}: expected {RANKS} respawned workers, " \
                    f"got {counters.get('pool_respawns', 0)}"
                assert counters["query_batch_retries"] == 1, \
                    f"{label}: expected exactly one retry, " \
                    f"got {counters.get('query_batch_retries', 0)}"
                assert counters["recovery_seconds"] >= 1, \
                    f"{label}: recovery_seconds not recorded"
            else:
                assert counters["index_reuse_hits"] == RANKS, \
                    f"{label}: expected {RANKS} index reuse hits, " \
                    f"got {counters.get('index_reuse_hits', 0)}"
                assert counters.get("index_build_runs", 0) == 0, \
                    f"{label}: rebuilt the index"
                assert counters.get("kmers_received_bloom", 0) == 0, \
                    f"{label}: moved bloom-stage build traffic"
                assert counters.get("kmers_received_hashtable", 0) == 0, \
                    f"{label}: refilled the hash table"
            assert counters["accepted_alignments"] > 0, \
                f"{label}: produced no alignments"
            extra = (f"recovered: failures={counters['rank_failures_detected']}, "
                     f"respawns={counters['pool_respawns']}, "
                     f"retries={counters['query_batch_retries']}"
                     if recovered else
                     f"reuse={counters['index_reuse_hits']}, rebuilds=0")
            print(f"serve smoke: {label} ok ({record.n_reads} reads, "
                  f"{counters['accepted_alignments']} alignments, {extra})")
    finally:
        service.shutdown()
        reset_persistent_read_caches()
        reset_resident_indexes()
    print(f"serve smoke{' (chaos)' if chaos else ''}: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
