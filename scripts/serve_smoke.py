"""CI smoke for the build/serve split: build once, serve twice, rebuild never.

Builds a resident index over 75% of a tiny synthetic data set (pooled
process backend), drains two query batches through
:class:`~repro.core.service.AlignmentService`, and asserts the residency
contract:

* every batch reports ``index_reuse_hits`` from all ranks and zero
  ``index_build_runs``;
* no batch moves any stage-1/2 build traffic (``kmers_received_bloom`` and
  ``kmers_received_hashtable`` both zero);
* both batches produce alignments (the serve path does real work, it is
  not vacuously "fast").

Pure counter checks — deterministic on any host, so ``ci.sh`` runs this on
every change (no timing, unlike the serve-latency gate in
``benchmarks/bench_backend_scaling.py``).
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import AlignmentService, PipelineConfig
from repro.core.stages import reset_persistent_read_caches, reset_resident_indexes
from repro.data.datasets import DatasetSpec, generate_dataset
from repro.data.genome import GenomeSpec
from repro.data.reads import ReadSimSpec
from repro.mpisim.backend import shutdown_rank_pools
from repro.mpisim.topology import Topology
from repro.seq.kmer import KmerSpec
from repro.seq.records import ReadSet

RANKS = 4


def main() -> int:
    spec = DatasetSpec(
        name="serve-smoke",
        genome=GenomeSpec(length=4000, repeat_fraction=0.0, seed=77),
        reads=ReadSimSpec(coverage=15.0, mean_read_length=900,
                          min_read_length=400, error_rate=0.08, seed=78),
    )
    reads = list(generate_dataset(spec).reads)
    n_index = (3 * len(reads)) // 4
    queries = reads[n_index:]
    assert len(queries) >= 2, "smoke data set too small to form 2 query batches"

    config = PipelineConfig(kmer=KmerSpec(k=15), coverage_hint=15.0,
                            error_rate_hint=0.08, backend="process", pool=True)
    service = AlignmentService(ReadSet(reads[:n_index]), config=config,
                               topology=Topology.single_node(RANKS))
    try:
        build = service.build()
        print(f"serve smoke: index built ({build.counters['index_retained_kmers']} "
              f"retained k-mers on {RANKS} ranks)")
        half = len(queries) // 2
        service.submit(queries[:half])
        records = service.drain()
        service.submit(queries[half:])
        records += service.drain()
        assert len(records) == 2, f"expected 2 query batches, got {len(records)}"
        for record in records:
            counters = record.result.counters
            label = f"batch {record.batch_index}"
            assert counters["index_reuse_hits"] == RANKS, \
                f"{label}: expected {RANKS} index reuse hits, " \
                f"got {counters.get('index_reuse_hits', 0)}"
            assert counters.get("index_build_runs", 0) == 0, \
                f"{label}: rebuilt the index"
            assert counters.get("kmers_received_bloom", 0) == 0, \
                f"{label}: moved bloom-stage build traffic"
            assert counters.get("kmers_received_hashtable", 0) == 0, \
                f"{label}: refilled the hash table"
            assert counters["accepted_alignments"] > 0, \
                f"{label}: produced no alignments"
            print(f"serve smoke: {label} ok ({record.n_reads} reads, "
                  f"{counters['accepted_alignments']} alignments, "
                  f"reuse={counters['index_reuse_hits']}, rebuilds=0)")
    finally:
        service.shutdown()
        reset_persistent_read_caches()
        reset_resident_indexes()
    print("serve smoke: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
